"""The property checkers must accept good traces and reject bad ones.

Positive cases come from real runs; negative cases are hand-crafted
traces embodying each specific violation (a mutation-style test of the
checkers themselves).
"""

import pytest

from repro.checking.events import (
    GcsTrace,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
)
from repro.checking.properties import (
    check_all_safety,
    check_liveness,
    check_mbrshp_conformance,
    check_local_monotonicity,
    check_safety_spec,
    check_self_delivery,
    check_self_inclusion,
    check_transitional_sets,
    check_virtual_synchrony,
)
from repro.errors import SpecificationViolation
from repro.types import make_view

from tests.conftest import trace_of

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
V2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})
V2_SOLO = make_view(2, ["a"], {"a": 2})


class TestSelfInclusion:
    def test_accepts_inclusive_views(self):
        trace = trace_of(("view", "a", V1, {"a"}))
        check_self_inclusion(trace)

    def test_rejects_exclusive_view(self):
        alien = make_view(1, ["b"], {"b": 1})
        trace = trace_of(("view", "a", alien, {"a"}))
        with pytest.raises(SpecificationViolation):
            check_self_inclusion(trace)


class TestLocalMonotonicity:
    def test_accepts_increasing(self):
        trace = trace_of(("view", "a", V1, {"a"}), ("view", "a", V2, {"a"}))
        check_local_monotonicity(trace)

    def test_rejects_decreasing(self):
        trace = trace_of(("view", "a", V2, {"a"}), ("view", "a", V1, {"a"}))
        with pytest.raises(SpecificationViolation):
            check_local_monotonicity(trace)

    def test_rejects_duplicate_view(self):
        trace = trace_of(("view", "a", V1, {"a"}), ("view", "a", V1, {"a"}))
        with pytest.raises(SpecificationViolation):
            check_local_monotonicity(trace)


class TestSafetySpecReplay:
    def test_accepts_within_view_fifo(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m1"),
            ("send", "a", "m2"),
            ("dlv", "b", "a", "m1"),
            ("dlv", "b", "a", "m2"),
            ("dlv", "a", "a", "m1"),
            ("dlv", "a", "a", "m2"),
        )
        check_safety_spec(trace, ["a", "b"])

    def test_rejects_out_of_order_delivery(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m1"),
            ("send", "a", "m2"),
            ("dlv", "b", "a", "m2"),
        )
        with pytest.raises(SpecificationViolation):
            check_safety_spec(trace, ["a", "b"])

    def test_rejects_phantom_delivery(self):
        trace = trace_of(("view", "b", V1, {"b"}), ("dlv", "b", "a", "ghost"))
        with pytest.raises(SpecificationViolation):
            check_safety_spec(trace, ["a", "b"])

    def test_rejects_cross_view_delivery(self):
        # a sends in V1; b delivers it while still in its initial view.
        trace = trace_of(("view", "a", V1, {"a"}), ("send", "a", "m"), ("dlv", "b", "a", "m"))
        with pytest.raises(SpecificationViolation):
            check_safety_spec(trace, ["a", "b"])

    def test_rejects_virtual_synchrony_violation_via_cut(self):
        # both move V1 -> V2, but a delivered m and b did not.
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("view", "a", V2, {"a", "b"}),
            ("view", "b", V2, {"a", "b"}),
        )
        with pytest.raises(SpecificationViolation):
            check_safety_spec(trace, ["a", "b"])

    def test_rejects_self_delivery_violation(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("send", "a", "mine"),
            ("view", "a", V2, {"a"}),
        )
        with pytest.raises(SpecificationViolation):
            check_safety_spec(trace, ["a", "b"])


class TestVirtualSynchronyDirect:
    def test_accepts_matching_delivery_counts(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("dlv", "b", "a", "m"),
            ("view", "a", V2, {"a", "b"}),
            ("view", "b", V2, {"a", "b"}),
        )
        check_virtual_synchrony(trace)

    def test_rejects_mismatched_counts(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("view", "a", V2, {"a", "b"}),
            ("view", "b", V2, {"a", "b"}),
        )
        with pytest.raises(SpecificationViolation):
            check_virtual_synchrony(trace)

    def test_different_previous_views_not_compared(self):
        # b reaches V2 from its initial view, a from V1: no constraint.
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("view", "a", V2, {"a"}),
            ("view", "b", V2, {"b"}),
        )
        check_virtual_synchrony(trace)


class TestTransitionalSets:
    def test_rejects_self_missing_from_t(self):
        trace = trace_of(("view", "a", V1, set()))
        with pytest.raises(SpecificationViolation):
            check_transitional_sets(trace)

    def test_rejects_t_outside_intersection(self):
        trace = trace_of(("view", "a", V1, {"a", "b"}))  # b not in a's old view
        with pytest.raises(SpecificationViolation):
            check_transitional_sets(trace)

    def test_rejects_wrong_co_mover_classification(self):
        # both reach V2 from V1... but a's T omits b.
        shared = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        trace = trace_of(
            ("view", "a", shared, {"a"}),
            ("view", "b", shared, {"b"}),
            ("view", "a", V2, {"a"}),
            ("view", "b", V2, {"a", "b"}),
        )
        with pytest.raises(SpecificationViolation):
            check_transitional_sets(trace)

    def test_accepts_correct_sets(self):
        shared = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        trace = trace_of(
            ("view", "a", shared, {"a"}),
            ("view", "b", shared, {"b"}),
            ("view", "a", V2, {"a", "b"}),
            ("view", "b", V2, {"a", "b"}),
        )
        check_transitional_sets(trace)


class TestSelfDeliveryDirect:
    def test_rejects_undelivered_own_message(self):
        trace = trace_of(("send", "a", "m"), ("view", "a", V1, {"a"}))
        with pytest.raises(SpecificationViolation):
            check_self_delivery(trace)

    def test_accepts_delivered_own_messages(self):
        trace = trace_of(
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("view", "a", V1, {"a"}),
        )
        check_self_delivery(trace)


class TestLiveness:
    def test_rejects_member_missing_final_view(self):
        trace = trace_of(("view", "a", V1, {"a"}))
        with pytest.raises(SpecificationViolation):
            check_liveness(trace, V1)

    def test_rejects_undelivered_message(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
        )
        with pytest.raises(SpecificationViolation):
            check_liveness(trace, V1)

    def test_accepts_complete_stable_run(self):
        trace = trace_of(
            ("view", "a", V1, {"a"}),
            ("view", "b", V1, {"b"}),
            ("send", "a", "m"),
            ("dlv", "a", "a", "m"),
            ("dlv", "b", "a", "m"),
        )
        check_liveness(trace, V1)


def test_check_all_safety_bundles_everything():
    bad = trace_of(("view", "a", V2, {"a"}), ("view", "a", V1, {"a"}))
    with pytest.raises(SpecificationViolation):
        check_all_safety(bad, ["a", "b"])


class TestMbrshpConformance:
    """check_mbrshp_conformance replays notices through Figure 2."""

    def mb_trace(self, *events):
        trace = GcsTrace()
        for time, event in enumerate(events):
            kind = event[0]
            if kind == "sc":
                _, p, cid, members = event
                trace.append(
                    MbrshpStartChangeEvent(float(time), p, cid, frozenset(members))
                )
            elif kind == "mv":
                _, p, view = event
                trace.append(MbrshpViewEvent(float(time), p, view))
            else:
                raise ValueError(kind)
        return trace

    def test_accepts_valid_notice_stream(self):
        trace = self.mb_trace(
            ("sc", "a", 1, {"a", "b"}),
            ("sc", "b", 1, {"a", "b"}),
            ("mv", "a", V1),
            ("mv", "b", V1),
        )
        check_mbrshp_conformance(trace)

    def test_rejects_view_without_start_change(self):
        trace = self.mb_trace(("mv", "a", V1))
        with pytest.raises(SpecificationViolation, match="MBRSHP conformance"):
            check_mbrshp_conformance(trace)

    def test_rejects_non_increasing_cid(self):
        trace = self.mb_trace(
            ("sc", "a", 2, {"a", "b"}),
            ("sc", "a", 2, {"a"}),
        )
        with pytest.raises(SpecificationViolation, match="MBRSHP conformance"):
            check_mbrshp_conformance(trace)

    def test_rejects_members_outside_suggested_set(self):
        trace = self.mb_trace(
            ("sc", "a", 1, {"a"}),
            ("mv", "a", V1),  # V1 has members {a, b}, announced only {a}
        )
        with pytest.raises(SpecificationViolation, match="MBRSHP conformance"):
            check_mbrshp_conformance(trace)

    def test_rejects_stale_start_id(self):
        trace = self.mb_trace(
            ("sc", "a", 5, {"a", "b"}),
            ("mv", "a", V1),  # V1 binds startId(a) = 1, but cid 5 was announced
        )
        with pytest.raises(SpecificationViolation, match="MBRSHP conformance"):
            check_mbrshp_conformance(trace)

    def test_empty_trace_passes(self):
        check_mbrshp_conformance(GcsTrace())
