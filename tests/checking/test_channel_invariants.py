"""Negative tests for the channel-level invariants (6.3-6.6).

These invariants inspect CO_RFIFO channel contents.  The fixture runs two
real end-points over explicit channel lists (a zero-latency hand-pumped
network), then each test plants a specific corruption and expects the
corresponding invariant to flag it.
"""

import pytest

from repro.checking.invariants import (
    WorldView,
    invariant_6_3,
    invariant_6_4,
    invariant_6_5,
    invariant_6_6,
)
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import AppMsg, FwdMsg, ViewMsg
from repro.core.runner import EndpointRunner
from repro.errors import InvariantViolation
from repro.ioa import Action
from repro.types import make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
V2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})


class ManualWorld:
    """Two end-points over hand-pumped channel lists."""

    def __init__(self):
        self.endpoints = {}
        self.runners = {}
        self.channels = {("a", "b"): [], ("b", "a"): []}
        for pid in ("a", "b"):
            endpoint = GcsEndpoint(pid)
            self.endpoints[pid] = endpoint
            self.runners[pid] = EndpointRunner(
                endpoint,
                send_wire=lambda targets, m, p=pid: self._enqueue(p, targets, m),
                set_reliable=lambda targets: None,
            )

    def _enqueue(self, src, targets, message):
        for dst in targets:
            if dst != src:
                self.channels[(src, dst)].append(message)

    def pump(self):
        """Deliver everything currently queued, repeatedly, to quiescence."""
        progressed = True
        while progressed:
            progressed = False
            for (src, dst), queue in self.channels.items():
                while queue:
                    message = queue.pop(0)
                    self.runners[dst].receive(src, message)
                    progressed = True

    def view(self):
        return WorldView(
            self.endpoints,
            channel_of=lambda p, q: self.channels.get((p, q), []),
            reliable_set_of=lambda p: self.endpoints[p].reliable_set,
        )


@pytest.fixture
def world():
    w = ManualWorld()
    for pid in ("a", "b"):
        w.runners[pid].membership_start_change(1, {"a", "b"})
    w.pump()
    for pid in ("a", "b"):
        w.runners[pid].membership_view(V1)
    w.pump()
    for pid in ("a", "b"):
        assert w.endpoints[pid].current_view == V1
    return w


def test_clean_world_passes(world):
    view = world.view()
    invariant_6_3(view)
    invariant_6_4(view)
    invariant_6_5(view)
    invariant_6_6(view)


def test_clean_world_with_traffic_passes(world):
    world.runners["a"].app_send("hello")
    view = world.view()  # message still on the channel: check mid-flight
    invariant_6_3(view)
    invariant_6_4(view)
    invariant_6_5(view)
    invariant_6_6(view)
    world.pump()
    invariant_6_6(world.view())


def test_6_3_flags_non_monotone_view_stream(world):
    old = make_view(0, ["a", "b"], {"a": 0, "b": 0})
    world.channels[("a", "b")].append(ViewMsg(old))
    with pytest.raises(InvariantViolation, match="6.3"):
        invariant_6_3(world.view())


def test_6_4_flags_wrong_history_view(world):
    world.channels[("a", "b")].append(AppMsg("m", history_view=V2, history_index=1))
    with pytest.raises(InvariantViolation, match="6.4"):
        invariant_6_4(world.view())


def test_6_5_flags_wrong_history_index(world):
    world.channels[("a", "b")].append(AppMsg("m", history_view=V1, history_index=5))
    with pytest.raises(InvariantViolation, match="6.5"):
        invariant_6_5(world.view())


def test_6_6_flags_in_transit_message_not_on_sender_queue(world):
    world.channels[("a", "b")].append(AppMsg("ghost", history_view=V1, history_index=1))
    with pytest.raises(InvariantViolation, match="6.6"):
        invariant_6_6(world.view())


def test_6_6_flags_forged_forwarded_message(world):
    world.channels[("a", "b")].append(FwdMsg("b", V1, 1, "never existed"))
    with pytest.raises(InvariantViolation, match="6.6"):
        invariant_6_6(world.view())


def test_6_6_flags_diverged_receiver_copy(world):
    world.runners["b"].app_send("original")
    world.pump()
    a = world.endpoints["a"]
    buffers = a.msgs["b"]
    log = buffers[a.current_view]
    log._items[0] = "tampered"  # corrupt the stored copy directly
    with pytest.raises(InvariantViolation, match="6.6"):
        invariant_6_6(world.view())
