"""The refinement checkers (Lemmas 6.1/6.2/6.4/6.5, executable)."""

import pytest

from repro.checking.refinement import (
    SafetyRefinementChecker,
    TransSetRefinementChecker,
    attach_refinement_checkers,
)
from repro.errors import RefinementViolation
from repro.harness import ModelHarness
from repro.ioa import Action
from repro.spec.wv_rfifo import WvRfifoSpec


def run_with_checkers(seed=0, steps=20_000):
    harness = ModelHarness("abc", seed=seed, scripts={p: [f"{p}0", f"{p}1"] for p in "abc"})
    scheduler = harness.scheduler("fair")
    safety, ts = attach_refinement_checkers(scheduler, harness.world)
    harness.form_view("abc")
    scheduler.run(max_steps=steps)
    return harness, safety, ts


def test_refinements_hold_on_clean_run():
    harness, safety, ts = run_with_checkers()
    assert harness.system.quiescent()
    # spec state evolved alongside: every process reached the same view
    for p in "abc":
        assert safety.spec.current_view[p] == harness.endpoints[p].current_view
        assert ts.spec.current_view[p] == harness.endpoints[p].current_view


def test_refinements_hold_under_partition():
    harness = ModelHarness("abc", seed=3, scripts={p: [f"{p}0"] for p in "abc"})
    scheduler = harness.scheduler("fair")
    safety, ts = attach_refinement_checkers(scheduler, harness.world)
    harness.form_view("abc")
    scheduler.run(max_steps=20_000)
    for p in "abc":
        harness.clients[p].queue(f"{p}-late")
    _views, actions = harness.driver.partitioned_views([["a"], ["b", "c"]])
    harness.inject_membership(actions)
    scheduler.run(max_steps=20_000)
    assert harness.system.quiescent()
    for p in "abc":
        assert safety.spec.current_view[p] == harness.endpoints[p].current_view
        assert ts.spec.current_view[p] == harness.endpoints[p].current_view


def test_wv_only_refinement():
    harness = ModelHarness("ab", seed=1, scripts={"a": ["x"], "b": ["y"]})
    scheduler = harness.scheduler("fair")
    checker = SafetyRefinementChecker(harness.world, WvRfifoSpec)
    scheduler.add_hook(checker.hook)
    harness.form_view("ab")
    scheduler.run(max_steps=20_000)
    assert checker.spec.current_view["a"] == harness.endpoints["a"].current_view


def test_safety_checker_flags_illegal_view_step():
    harness = ModelHarness("ab", seed=1)
    checker = SafetyRefinementChecker(harness.world)
    from repro.types import make_view

    bogus = make_view(3, ["a", "b"], {"a": 3, "b": 3})
    with pytest.raises(RefinementViolation):
        checker.hook(harness.system, None, Action("deliver", ("a", "b", "ghost")))


def test_ts_checker_flags_undeclared_view():
    harness = ModelHarness("ab", seed=1)
    checker = TransSetRefinementChecker(harness.world)
    from repro.types import make_view

    bogus = make_view(3, ["a", "b"], {"a": 3, "b": 3})
    with pytest.raises(RefinementViolation):
        checker.hook(harness.system, None, Action("view", ("a", bogus, frozenset({"a"}))))


def test_mapping_equation_violation_detected():
    harness = ModelHarness("ab", seed=1)
    scheduler = harness.scheduler("fair")
    checker = SafetyRefinementChecker(harness.world)
    scheduler.add_hook(checker.hook)
    harness.form_view("ab")
    scheduler.run(max_steps=20_000)
    # corrupt the algorithm state so R no longer holds, then take a step
    harness.endpoints["a"].last_dlvrd["b"] = 99
    harness.clients["a"].queue("late")
    with pytest.raises(RefinementViolation):
        scheduler.run(max_steps=10)
