"""Unit tests for the GcsTrace event record and its view-relative queries."""

import pytest

from repro.checking.events import (
    DeliverEvent,
    GcsTrace,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
V2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})


def sample_trace():
    trace = GcsTrace()
    trace.append(SendEvent(0.0, "a", "early"))
    trace.append(ViewEvent(1.0, "a", V1, frozenset({"a"})))
    trace.append(SendEvent(2.0, "a", "m1"))
    trace.append(DeliverEvent(3.0, "a", "a", "m1"))
    trace.append(DeliverEvent(3.0, "b", "a", "m1"))
    trace.append(ViewEvent(4.0, "a", V2, frozenset({"a", "b"})))
    trace.append(SendEvent(5.0, "a", "m2"))
    return trace


def test_of_type_and_at():
    trace = sample_trace()
    assert len(trace.of_type(SendEvent)) == 3
    assert len(trace.at("b")) == 1
    assert trace.processes() == {"a", "b"}


def test_views_at():
    trace = sample_trace()
    assert [e.view for e in trace.views_at("a")] == [V1, V2]
    assert trace.views_at("b") == []


def test_per_view_segments_assigns_events_to_views():
    trace = sample_trace()
    segments = trace.per_view_segments("a")
    by_view = {view: events for view, events in segments}
    assert any(isinstance(e, SendEvent) and e.payload == "early"
               for e in by_view[initial_view("a")])
    assert any(isinstance(e, SendEvent) and e.payload == "m1" for e in by_view[V1])
    assert any(isinstance(e, SendEvent) and e.payload == "m2" for e in by_view[V2])


def test_sends_and_deliveries_in_view():
    trace = sample_trace()
    assert trace.sends_in_view("a", V1) == ["m1"]
    assert trace.deliveries_in_view("a", V1) == [("a", "m1")]
    assert trace.deliveries_in_view("a", V1, sender="b") == []


def test_transition_of():
    trace = sample_trace()
    assert trace.transition_of("a", V1) == initial_view("a")
    assert trace.transition_of("a", V2) == V1
    assert trace.transition_of("b", V2) is None


def test_recovery_resets_segments_and_transitions():
    trace = sample_trace()
    trace.append(RecoverEvent(6.0, "a"))
    trace.append(SendEvent(7.0, "a", "fresh"))
    v3 = make_view(3, ["a"], {"a": 3})
    trace.append(ViewEvent(8.0, "a", v3, frozenset({"a"})))
    # the post-recovery send belongs to a fresh initial-view segment
    segments = trace.per_view_segments("a")
    last_initial = [events for view, events in segments if view == initial_view("a")][-1]
    assert any(getattr(e, "payload", None) == "fresh" for e in last_initial)
    # and the transition into v3 is from the initial view, not V2
    assert trace.transition_of("a", v3) == initial_view("a")


def test_merged_orders_by_time():
    t1, t2 = GcsTrace(), GcsTrace()
    t1.append(SendEvent(2.0, "a", "late"))
    t2.append(SendEvent(1.0, "b", "early"))
    merged = t1.merged(t2)
    assert [e.payload for e in merged] == ["early", "late"]
