"""Negative-path tests for the server fault-domain trace rules.

A recovery that forks the view history or forgets its durable counter
watermark must be *caught*, not merely avoided.  These tests exercise
the two Section-8 rules directly on hand-built traces, then run a real
server-crash-and-recovery on the simulated substrate and forge a
ViewNotice-shaped formation with a stale view counter into its trace:
the verdict must FAIL with ``MBRSHP-SRV-MONO`` at the earliest witness.
"""

import asyncio

import pytest

from repro._collections import frozendict
from repro.checking.events import GcsTrace, MbrshpFormEvent, ViewEvent
from repro.checking.verdict import run_verdict
from repro.deploy import make_deployment
from repro.types import View, ViewId

SRV_CODES = ("MBRSHP-SRV-FORK", "MBRSHP-SRV-MONO")


def _view(counter, origin, members, cid=1):
    return View(
        ViewId(counter, origin),
        frozenset(members),
        frozendict({pid: cid for pid in members}),
    )


def _form(time, sid, view):
    return MbrshpFormEvent(time, sid, view)


class TestServerForkRule:
    def test_one_vid_one_view_passes(self):
        v = _view(1, "srv:0", "ab")
        trace = GcsTrace(
            [
                _form(0.0, "srv:0", v),
                _form(0.1, "srv:1", v),
                ViewEvent(0.2, "a", v, frozenset("ab")),
            ]
        )
        assert run_verdict(trace, ["a", "b"], include=SRV_CODES).ok

    def test_same_vid_different_members_is_a_fork(self):
        # The signature of a forked recovery: a server that forgot it
        # already issued counter 1 re-forms it over other members.
        trace = GcsTrace(
            [
                _form(0.0, "srv:0", _view(1, "srv:0", "ab")),
                _form(0.1, "srv:1", _view(1, "srv:0", "ac")),
            ]
        )
        verdict = run_verdict(trace, ["a", "b", "c"], include=SRV_CODES)
        assert verdict.primary.code == "MBRSHP-SRV-FORK"
        assert verdict.primary.witness_index == 1

    def test_fork_seen_across_client_and_server_events(self):
        # The rule spans observation kinds: a client-side view delivery
        # and a later server formation must agree on the denotation too.
        trace = GcsTrace(
            [
                ViewEvent(0.0, "a", _view(2, "srv:1", "ab"), frozenset("ab")),
                _form(0.5, "srv:1", _view(2, "srv:1", "abc")),
            ]
        )
        verdict = run_verdict(trace, ["a", "b", "c"], include=SRV_CODES)
        assert verdict.primary.code == "MBRSHP-SRV-FORK"
        assert verdict.primary.witness_index == 1


class TestServerCounterMonotonicityRule:
    def test_origin_regression_fails_at_earliest_witness(self):
        trace = GcsTrace(
            [
                _form(0.0, "srv:0", _view(2, "srv:0", "ab")),
                _form(0.1, "srv:0", _view(1, "srv:0", "a")),
                _form(0.2, "srv:0", _view(1, "srv:0", "b")),
            ]
        )
        verdict = run_verdict(trace, ["a", "b"], include=SRV_CODES)
        assert verdict.primary.code == "MBRSHP-SRV-MONO"
        assert verdict.primary.witness_index == 1  # earliest, not last

    def test_equal_counter_is_a_regression_too(self):
        trace = GcsTrace(
            [
                _form(0.0, "srv:0", _view(3, "srv:0", "ab")),
                _form(0.1, "srv:0", _view(3, "srv:0", "ab")),
            ]
        )
        verdict = run_verdict(trace, ["a", "b"], include=SRV_CODES)
        assert verdict.primary.code == "MBRSHP-SRV-MONO"

    def test_non_origin_formations_are_ignored(self):
        # Co-formers adopt rounds in whatever order messages land; only
        # the origin's own sequence is causally ordered in the trace.
        trace = GcsTrace(
            [
                _form(0.0, "srv:1", _view(5, "srv:0", "ab")),
                _form(0.1, "srv:1", _view(4, "srv:0", "ab")),
            ]
        )
        assert run_verdict(trace, ["a", "b"], include=SRV_CODES).ok

    def test_per_origin_watermarks_are_independent(self):
        trace = GcsTrace(
            [
                _form(0.0, "srv:0", _view(7, "srv:0", "a")),
                _form(0.1, "srv:1", _view(2, "srv:1", "b")),
            ]
        )
        assert run_verdict(trace, ["a", "b"], include=SRV_CODES).ok


# ----------------------------------------------------------------------
# the real thing: forged stale notice after an actual recovery
# ----------------------------------------------------------------------


def _recovery_run():
    """A full sim run: crash a membership server, recover it, keep going."""

    async def main():
        d = make_deployment("sim", membership="tier", servers=3)
        await d.setup(["a", "b", "c"])
        await d.send("a", "m1")
        sid = await d.server_crash()
        await d.send("b", "m2")
        await d.server_recover(sid)
        await d.reconfigure(["a", "b"])
        await d.reconfigure(["a", "b", "c"])
        await d.settle()
        await d.close()
        return d, sid

    return asyncio.run(main())


@pytest.fixture(scope="module")
def recovery():
    return _recovery_run()


def test_genuine_recovery_verdict_is_green(recovery):
    deployment, _sid = recovery
    verdict = deployment.verdict()
    assert verdict.ok, verdict.to_json(indent=2)
    assert set(SRV_CODES) <= set(verdict.rules)


def test_forged_stale_notice_after_recovery_fails_srv_mono(recovery):
    """Satellite: a forged view formation claiming a stale counter from
    the recovered server FAILs with MBRSHP-SRV-MONO at its index."""
    deployment, _sid = recovery
    origins = [
        e
        for e in deployment.trace.of_type(MbrshpFormEvent)
        if e.proc == e.view.vid.origin
    ]
    assert origins, "a tier-mode run must record origin formations"
    victim = origins[-1]
    stale = MbrshpFormEvent(victim.time, victim.proc, victim.view)
    forged = GcsTrace(deployment.trace)
    forged.append(stale)  # a server re-announcing a counter it already issued
    verdict = run_verdict(forged, deployment.processes())
    assert not verdict.ok
    assert verdict.primary.code == "MBRSHP-SRV-MONO", verdict.to_json(indent=2)
    assert verdict.primary.witness_index == len(forged) - 1


def test_forged_forked_view_after_recovery_fails_srv_fork(recovery):
    deployment, sid = recovery
    formations = deployment.trace.of_type(MbrshpFormEvent)
    victim = formations[-1].view
    fork = _view(victim.vid.counter, victim.vid.origin, victim.members | {"z"})
    forged = GcsTrace(deployment.trace)
    forged.append(MbrshpFormEvent(formations[-1].time, sid, fork))
    verdict = run_verdict(forged, deployment.processes())
    assert not verdict.ok
    assert verdict.primary.code == "MBRSHP-SRV-FORK"
    assert verdict.primary.witness_index == len(forged) - 1
