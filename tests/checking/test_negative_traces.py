"""Negative-path tests: forged trace mutations every checker must reject.

A green safety battery only means something if a broken trace turns it
red.  Each test takes a known-good trace (recorded from a deterministic
simulator episode), applies one targeted corruption, and asserts the
matching checker raises :class:`SpecificationViolation`.  This is the
unit-level counterpart of the chaos engine's ``--self-test``.

The second half is the systematic per-code battery: for every
registered trace rule, the forgery in
:data:`repro.checking.forge.FORGERIES` corrupts the good trace so that
exactly that code is the verdict's primary violation, at a witness index
the forgery computed in advance.  A completeness meta-test pins the
battery to the registry, so adding a code without a negative trace
fails the suite.
"""

from dataclasses import replace

import pytest

from repro.chaos import ChaosOp, ChaosPlan, ChaosRunner, FaultModel
from repro.checking import (
    REGISTRY,
    DeliverEvent,
    GcsTrace,
    MbrshpViewEvent,
    ViewEvent,
    check_deployment_trace,
    check_local_monotonicity,
    check_mbrshp_conformance,
    check_safety_spec,
    check_self_delivery,
    check_self_inclusion,
    extract_skeleton,
    run_verdict,
)
from repro.checking.forge import FORGERIES
from repro.errors import SpecificationViolation

PROCS = ("a", "b", "c")


@pytest.fixture(scope="module")
def good_trace():
    """A fault-free episode with traffic and two reconfigurations.

    The shape guarantees the raw material every mutation needs: two
    FIFO-ordered messages from one sender, self-deliveries followed by
    later view changes, and several membership view notices.
    """
    plan = ChaosPlan(
        seed=0,
        processes=PROCS,
        faults=FaultModel(),
        ops=(),
    ).with_ops([
        ChaosOp("send", pid="a", payload="m1"),
        ChaosOp("send", pid="a", payload="m2"),
        ChaosOp("settle"),
        ChaosOp("reconfigure", members=("a", "b")),
        ChaosOp("settle"),
        ChaosOp("reconfigure", members=PROCS),
    ])
    episode = ChaosRunner("sim").run(plan)
    assert episode.ok, episode.summary()
    return episode.trace


def test_the_unmutated_trace_passes(good_trace):
    check_deployment_trace(good_trace, list(PROCS))


def test_dropped_self_delivery_is_caught(good_trace):
    """Remove a's delivery of its own message: Self Delivery must fail."""
    victim = next(
        e
        for e in good_trace.of_type(DeliverEvent)
        if e.proc == "a" and e.sender == "a"
    )
    mutated = GcsTrace(e for e in good_trace if e is not victim)
    with pytest.raises(SpecificationViolation, match="Self Delivery"):
        check_self_delivery(mutated)


def test_reordered_fifo_pair_is_caught(good_trace):
    """Swap b's deliveries of a's m1/m2: the spec replay must reject."""
    deliveries = [
        e
        for e in good_trace.of_type(DeliverEvent)
        if e.proc == "b" and e.sender == "a"
    ]
    first, second = deliveries[0], deliveries[1]
    assert (first.payload, second.payload) == ("m1", "m2")
    events = list(good_trace)
    i, j = events.index(first), events.index(second)
    events[i], events[j] = events[j], events[i]
    with pytest.raises(SpecificationViolation, match="not accepted"):
        check_safety_spec(GcsTrace(events), PROCS)


def test_nonmonotonic_view_is_caught(good_trace):
    """Re-deliver the last view: Local Monotonicity must fail."""
    mutated = GcsTrace(good_trace)
    mutated.append(good_trace.of_type(ViewEvent)[-1])
    with pytest.raises(SpecificationViolation, match="Local Monotonicity"):
        check_local_monotonicity(mutated)


def test_view_without_self_is_caught(good_trace):
    """Strip the recipient from a delivered view: Self Inclusion fails."""
    victim = good_trace.of_type(ViewEvent)[-1]
    forged_view = replace(
        victim.view, members=victim.view.members - {victim.proc}
    )
    forged = replace(victim, view=forged_view)
    mutated = GcsTrace(forged if e is victim else e for e in good_trace)
    with pytest.raises(SpecificationViolation, match="Self Inclusion"):
        check_self_inclusion(mutated)


def test_duplicated_membership_notice_is_caught(good_trace):
    """Replay a membership view notice: Figure 2 conformance must fail."""
    mutated = GcsTrace(good_trace)
    mutated.append(good_trace.of_type(MbrshpViewEvent)[-1])
    with pytest.raises(SpecificationViolation, match="MBRSHP conformance"):
        check_mbrshp_conformance(mutated, PROCS)


# ----------------------------------------------------------------------
# The per-code battery: one forgery per registered trace rule
# ----------------------------------------------------------------------


def test_battery_covers_every_registered_trace_rule():
    """Completeness meta-test: a code without a forgery fails the suite."""
    trace_rules = {code for code, info in REGISTRY.items() if info.trace_rule}
    assert set(FORGERIES) == trace_rules


@pytest.mark.parametrize("code", sorted(FORGERIES))
def test_forgery_produces_its_code_as_primary(code, good_trace):
    """Each forged trace fails with exactly its target code, at the
    witness index the forgery computed in advance."""
    forgery = FORGERIES[code]
    golden = extract_skeleton(good_trace) if forgery.needs_golden else None
    forged = forgery.apply(good_trace)
    assert forged is not None, f"{code}: good trace lacks the raw material"
    assert forged.code == code
    verdict = run_verdict(
        forged.trace,
        list(PROCS),
        final_view=forged.final_view if forgery.needs_final_view else None,
        golden=golden,
    )
    assert not verdict.ok
    assert verdict.primary.code == code, verdict.to_json(indent=2)
    assert verdict.primary.witness_index == forged.expected_index


@pytest.mark.parametrize("code", sorted(FORGERIES))
def test_forged_verdicts_are_byte_identical_across_runs(code, good_trace):
    forgery = FORGERIES[code]
    golden = extract_skeleton(good_trace) if forgery.needs_golden else None
    forged = forgery.apply(good_trace)
    final_view = forged.final_view if forgery.needs_final_view else None
    runs = [
        run_verdict(
            forged.trace, list(PROCS), final_view=final_view, golden=golden
        ).to_json()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
