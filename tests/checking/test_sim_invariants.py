"""Invariant checking against the *simulated* deployment.

The invariants of Sections 6-7 are usually asserted on the IOA model;
``WorldView.from_sim_world`` reconstructs the CO_RFIFO channel contents
from the simulator's transports and in-flight queues, so the same
predicates apply to simulated runs.  (Garbage collection must be off:
the formal invariants reference messages a GC-ing implementation has
legitimately discarded.)
"""

import pytest

from repro.checking.invariants import WorldView, check_invariants
from repro.errors import CrashedError
from repro.net import ConstantLatency, SimWorld, UniformLatency


def make_world(**kwargs):
    defaults = dict(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=2.0,
        gc_views=False,
    )
    defaults.update(kwargs)
    world = SimWorld(**defaults)
    nodes = world.add_nodes([f"p{i}" for i in range(4)])
    world.start()
    world.run()
    return world, nodes


def test_invariants_hold_at_quiescence():
    world, nodes = make_world()
    for node in nodes:
        node.send("x-" + node.pid)
    world.run()
    check_invariants(WorldView.from_sim_world(world))


def test_invariants_hold_mid_flight():
    world, nodes = make_world(latency=UniformLatency(0.5, 3.0, seed=2))
    for node in nodes:
        for i in range(3):
            node.send((node.pid, i))
    # check at several instants while messages are still on the wire
    for _ in range(6):
        world.run_until(world.now() + 0.7)
        check_invariants(WorldView.from_sim_world(world))
    world.run()
    check_invariants(WorldView.from_sim_world(world))


def test_invariants_hold_during_view_change():
    world, nodes = make_world(round_duration=4.0)
    for node in nodes:
        node.send("pre-" + node.pid)
    world.run()
    world.crash("p3")
    for _ in range(5):
        world.run_until(world.now() + 1.0)
        check_invariants(WorldView.from_sim_world(world))
    world.run()
    check_invariants(WorldView.from_sim_world(world))


def test_invariants_hold_across_partition_backlogs():
    world, nodes = make_world()
    world.partition([["p0", "p1"], ["p2", "p3"]])
    world.run()
    nodes[0].send("island message")
    world.run()
    check_invariants(WorldView.from_sim_world(world))
    world.heal()
    world.run()
    check_invariants(WorldView.from_sim_world(world))


def test_channel_reconstruction_sees_in_flight_messages():
    world, nodes = make_world()
    nodes[0].send("in flight")
    view = WorldView.from_sim_world(world)
    channel = view.channel_of("p0", "p1")
    assert any(getattr(m, "payload", None) == "in flight" for m in channel)
    world.run()
    assert WorldView.from_sim_world(world).channel_of("p0", "p1") == []


def test_send_on_crashed_node_raises():
    world, nodes = make_world()
    world.crash("p2")
    with pytest.raises(CrashedError):
        nodes[2].send("ghost message")
