"""The verdict engine: earliest witnesses, deterministic order, one pass.

The contract under test (see ``repro.checking.verdict``): a rule's
``witness_index`` is the smallest ``i`` such that ``trace[0..i]``
already violates it; every rule contributes at most its first violation;
violations are ordered by ``(witness_index, class rank, lexical code)``;
and the serialised verdict is byte-stable.  The trans-set tests here are
the regression suite for the old batch-mode checker, which grouped view
deliveries by view and could report a later event than the earliest
demonstrable one.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checking import (
    CLASS_ORDER,
    DEFAULT_CODES,
    REGISTRY,
    SAFETY_CODES,
    SOUNDNESS,
    extract_skeleton,
    run_verdict,
)
from repro.checking.codes import class_rank, violation_sort_key
from repro.checking.events import SendEvent
from repro.checking.verdict import (
    MonotonicityRule,
    TransSetRule,
    first_violation,
)
from repro.types import make_view

from tests.conftest import trace_of

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
V2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})


def good_trace():
    """Two FIFO messages over a shared view; passes every default rule."""
    return trace_of(
        ("view", "a", V1, {"a"}),
        ("view", "b", V1, {"b"}),
        ("send", "a", "m1"),
        ("send", "a", "m2"),
        ("dlv", "a", "a", "m1"),
        ("dlv", "a", "a", "m2"),
        ("dlv", "b", "a", "m1"),
        ("dlv", "b", "a", "m2"),
    )


class TestPassVerdict:
    def test_shape(self):
        trace = good_trace()
        verdict = run_verdict(trace, ["a", "b"])
        assert verdict.ok
        assert verdict.status == "PASS"
        assert verdict.events == len(trace)
        assert verdict.violations == ()
        assert verdict.primary is None
        assert verdict.witness_index is None
        assert verdict.rules == tuple(sorted(DEFAULT_CODES))

    def test_to_dict_carries_the_soundness_statement(self):
        verdict = run_verdict(good_trace(), ["a", "b"])
        payload = verdict.to_dict()
        assert payload["soundness"] == SOUNDNESS
        assert payload["status"] == "PASS"
        assert payload["violations"] == []

    def test_liveness_and_golden_rules_join_on_demand(self):
        trace = good_trace()
        verdict = run_verdict(
            trace, ["a", "b"], final_view=V1, golden=extract_skeleton(trace)
        )
        assert verdict.ok
        assert "VS-LIVE" in verdict.rules
        assert "VS-SKEL" in verdict.rules


class TestEarliestWitness:
    def test_multi_violation_trace_is_ordered_by_witness_then_class(self):
        # index 1: non-monotonic view (contract) and spec rejection
        # (refinement); index 2: a view without its recipient (contract)
        # whose T is also outside the old/new intersection (contract).
        alien = make_view(3, ["a"], {"a": 3})
        trace = trace_of(
            ("view", "a", V2, {"a"}),
            ("view", "a", V1, {"a"}),
            ("view", "b", alien, {"b"}),
        )
        verdict = run_verdict(trace, ["a", "b"])
        assert not verdict.ok
        found = [(v.code, v.witness_index) for v in verdict.violations]
        assert found == [
            ("VS-MONO", 1),  # contract beats refinement on the shared index
            ("VS-SPEC-REFINE", 1),
            ("VS-SELF-INCL", 2),  # lexically before VS-TRANS-SET, same class
            ("VS-TRANS-SET", 2),
        ]
        assert verdict.primary.code == "VS-MONO"
        assert verdict.witness_index == 1

    def test_each_rule_reports_only_its_first_violation(self):
        # Two independent monotonicity violations; only the earlier counts.
        trace = trace_of(
            ("view", "a", V2, {"a"}),
            ("view", "a", V1, {"a"}),
            ("view", "b", V2, {"b"}),
            ("view", "b", V1, {"b"}),
        )
        violation = first_violation(trace, MonotonicityRule())
        assert violation.witness_index == 1
        verdict = run_verdict(trace, ["a", "b"])
        mono = [v for v in verdict.violations if v.code == "VS-MONO"]
        assert [v.witness_index for v in mono] == [1]

    def test_sort_key_matches_the_published_order(self):
        assert violation_sort_key("VS-MONO", 3) < violation_sort_key(
            "VS-SPEC-REFINE", 3
        )
        assert violation_sort_key("VS-SPEC-REFINE", 2) < violation_sort_key(
            "VS-MONO", 3
        )
        # lexical facts the forgeries rely on (same class, same index)
        assert "VS-SELF-INCL" < "VS-TRANS-SET"
        assert "VS-MONO" < "VS-TRANS-SET"
        assert "VS-SELF-DLV" < "VS-VSYNC"


class TestTransSetRegression:
    """The out-of-order arrival cases the batch checker got wrong."""

    SHARED = make_view(1, ["a", "b", "c"], {"a": 1, "b": 1, "c": 1})
    NEXT = make_view(2, ["a", "b", "c"], {"a": 2, "b": 2, "c": 2})

    def two_violation_trace(self):
        # Same-previous-view movers disagree on T, demonstrable only at
        # the second arrival (index 4); a later, independent violation
        # (c's T missing c, index 5) must NOT be the one reported.
        solo = make_view(3, ["c"], {"c": 3})
        return trace_of(
            ("view", "a", self.SHARED, {"a"}),
            ("view", "b", self.SHARED, {"b"}),
            ("view", "c", self.SHARED, {"c"}),
            ("view", "a", self.NEXT, {"a"}),
            ("view", "b", self.NEXT, {"a", "b"}),
            ("view", "c", solo, set()),
        )

    def test_disagreement_is_witnessed_at_the_second_arrival(self):
        violation = first_violation(self.two_violation_trace(), TransSetRule())
        assert violation is not None
        assert violation.code == "VS-TRANS-SET"
        assert violation.witness_index == 4

    def test_verdict_keeps_the_earliest_trans_set_witness(self):
        verdict = run_verdict(self.two_violation_trace(), ["a", "b", "c"])
        trans = [v for v in verdict.violations if v.code == "VS-TRANS-SET"]
        assert [v.witness_index for v in trans] == [4]

    def test_classification_mismatch_caught_on_arrival(self):
        # b moved with a (same previous view) but a's T excluded it:
        # check (c)/(d) must fire at b's event, not later.
        trace = trace_of(
            ("view", "a", self.SHARED, {"a"}),
            ("view", "b", self.SHARED, {"b"}),
            ("view", "a", self.NEXT, {"a"}),
            ("view", "b", self.NEXT, {"a", "b"}),
        )
        violation = first_violation(trace, TransSetRule())
        assert violation is not None
        assert violation.witness_index == 3


class TestDeterminism:
    def test_failing_verdict_is_byte_identical_across_runs(self):
        alien = make_view(3, ["a"], {"a": 3})
        trace = trace_of(
            ("view", "a", V2, {"a"}),
            ("view", "a", V1, {"a"}),
            ("view", "b", alien, {"b"}),
        )
        first = run_verdict(trace, ["a", "b"]).to_json()
        second = run_verdict(trace, ["a", "b"]).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["status"] == "FAIL"
        assert payload["rules"] == sorted(DEFAULT_CODES)

    def test_indented_form_parses_to_the_same_payload(self):
        verdict = run_verdict(good_trace(), ["a", "b"])
        assert json.loads(verdict.to_json()) == json.loads(
            verdict.to_json(indent=2)
        )


class TestCrossProcessDeterminism:
    def test_forged_verdict_is_hash_seed_independent(self):
        """Two interpreters with different hash seeds must emit the same
        verdict bytes: trace order (wire fan-out) and message text (set
        reprs) may not leak the hash seed."""
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            result = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "verdict",
                    "--seed",
                    "7",
                    "--backend",
                    "sim",
                    "--mutate",
                    "VS-MONO",
                ],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert result.returncode == 1, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


class TestEndOfRunWitnesses:
    def test_liveness_violation_is_witnessed_at_trace_length(self):
        trace = trace_of(("view", "a", V1, {"a"}))  # b never arrives
        verdict = run_verdict(trace, ["a", "b"], final_view=V1)
        assert verdict.primary.code == "VS-LIVE"
        assert verdict.primary.witness_index == len(trace)

    def test_extra_event_under_golden_is_witnessed_where_it_occurred(self):
        trace = good_trace()
        golden = extract_skeleton(trace)
        mutated = trace_of(*[])
        for event in trace:
            mutated.append(event)
        mutated.append(SendEvent(99.0, "a", "extra"))
        verdict = run_verdict(mutated, ["a", "b"], golden=golden)
        assert verdict.primary.code == "VS-SKEL"
        assert verdict.primary.witness_index == len(trace)


class TestParameterValidation:
    def test_unknown_code_is_rejected(self):
        with pytest.raises(ValueError, match="unknown violation code"):
            run_verdict(good_trace(), ["a", "b"], include=["VS-NOPE"])

    def test_runtime_findings_are_not_trace_rules(self):
        with pytest.raises(ValueError, match="runtime finding"):
            run_verdict(good_trace(), ["a", "b"], include=["RUN-STALL"])

    def test_live_code_requires_a_final_view(self):
        with pytest.raises(ValueError, match="final_view"):
            run_verdict(good_trace(), ["a", "b"], include=["VS-LIVE"])

    def test_skeleton_code_requires_a_golden(self):
        with pytest.raises(ValueError, match="golden"):
            run_verdict(good_trace(), ["a", "b"], include=["VS-SKEL"])


class TestRegistry:
    def test_class_order_backs_the_documented_priorities(self):
        assert CLASS_ORDER.index("contract") < CLASS_ORDER.index("refinement")
        assert class_rank("VS-MONO") < class_rank("VS-SPEC-REFINE")
        assert class_rank("VS-SPEC-REFINE") < class_rank("MBRSHP-CONF")
        assert class_rank("VS-SKEL") < class_rank("VS-LIVE")

    def test_default_and_safety_sets_are_registered_trace_rules(self):
        assert set(SAFETY_CODES) < set(DEFAULT_CODES) <= set(REGISTRY)
        for code in DEFAULT_CODES:
            assert REGISTRY[code].trace_rule
        assert not REGISTRY["RUN-STALL"].trace_rule

    def test_every_code_documents_complexity_and_paper_ref(self):
        for info in REGISTRY.values():
            assert info.complexity
            assert info.paper_ref
            assert info.rule_class in CLASS_ORDER
