"""Tests for the replicated state machine over the GCS."""

import pytest

from repro.apps import NotPrimaryError, ReplicatedStateMachine
from repro.checking import check_all_safety
from repro.net import ConstantLatency, SimWorld, UniformLatency


def apply_op(state, operation):
    kind, value = operation
    if kind == "add":
        return state + value
    if kind == "mul":
        return state * value
    raise ValueError(kind)


def make_replicas(n=4, universe=None, latency=None):
    world = SimWorld(
        latency=latency or ConstantLatency(1.0),
        membership="oracle",
        round_duration=2.0,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(n)])
    replicas = [
        ReplicatedStateMachine(node, 0, apply_op, universe=universe)
        for node in nodes
    ]
    world.start()
    world.run()
    return world, replicas


def states(replicas):
    return {r.pid: (r.state, r.applied) for r in replicas}


class TestReplication:
    def test_all_replicas_apply_all_commands(self):
        world, replicas = make_replicas()
        replicas[0].command(("add", 5))
        replicas[1].command(("add", 7))
        world.run()
        assert set(states(replicas).values()) == {(12, 2)}

    def test_non_commutative_commands_agree(self):
        # add then mul vs mul then add differ; total order must pick one
        # outcome for everyone, across many jittered runs
        for seed in range(5):
            world, replicas = make_replicas(latency=UniformLatency(0.2, 2.0, seed=seed))
            replicas[0].command(("add", 3))
            replicas[1].command(("mul", 10))
            world.run()
            outcomes = set(states(replicas).values())
            assert len(outcomes) == 1, outcomes
            assert outcomes.pop()[0] in (30, 3)  # (0+3)*10 or 0*10+3

    def test_on_apply_hook(self):
        seen = []
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
        node = world.add_node("solo")
        replica = ReplicatedStateMachine(
            node, 0, apply_op, on_apply=lambda state, op: seen.append((state, op))
        )
        world.start()
        world.run()
        replica.command(("add", 2))
        world.run()
        assert seen == [(2, ("add", 2))]


class TestMerges:
    def test_partition_divergence_resolved_deterministically(self):
        world, replicas = make_replicas()
        replicas[0].command(("add", 1))
        world.run()
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        replicas[0].command(("add", 100))
        replicas[2].command(("add", 777))
        world.run()
        assert replicas[0].state == 101
        assert replicas[2].state == 778
        world.heal()
        world.run()
        final = set(states(replicas).values())
        assert len(final) == 1, final  # everyone adopted one winner
        assert final.pop()[0] in (101, 778)
        check_all_safety(world.trace, list(world.nodes))

    def test_commands_during_merge_apply_on_top_of_winner(self):
        world, replicas = make_replicas()
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        replicas[0].command(("add", 10))
        world.run()
        world.heal()
        world.run()
        base = replicas[0].state
        replicas[3].command(("add", 5))
        world.run()
        assert set(states(replicas).values()) == {(base + 5, replicas[0].applied)}

    def test_newcomer_adopts_state(self):
        world, replicas = make_replicas(n=3)
        world.crash("p2")
        world.run()
        replicas[0].command(("add", 42))
        world.run()
        world.recover("p2")
        world.run()
        assert replicas[2].state == 42


class TestPrimaryPartition:
    def test_minority_rejects_commands(self):
        universe = frozenset({"p0", "p1", "p2", "p3"})
        world, replicas = make_replicas(universe=universe)
        world.partition([["p0", "p1", "p2"], ["p3"]])
        world.run()
        replicas[0].command(("add", 1))  # majority side: fine
        with pytest.raises(NotPrimaryError):
            replicas[3].command(("add", 99))
        world.run()

    def test_majority_history_always_wins_merge(self):
        universe = frozenset({"p0", "p1", "p2", "p3"})
        world, replicas = make_replicas(universe=universe)
        world.partition([["p0", "p1", "p2"], ["p3"]])
        world.run()
        replicas[0].command(("add", 100))
        world.run()
        world.heal()
        world.run()
        assert set(states(replicas).values()) == {(100, 1)}

    def test_even_split_nobody_primary(self):
        universe = frozenset({"p0", "p1", "p2", "p3"})
        world, replicas = make_replicas(universe=universe)
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        for replica in replicas:
            with pytest.raises(NotPrimaryError):
                replica.command(("add", 1))
