"""Shared fixtures for the static-verifier tests."""

import os

import pytest

from repro.analysis import analyze

FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES_SCOPE = ("tests.analysis.fixtures",)


@pytest.fixture(scope="session")
def fixture_report():
    """One analysis run over the broken-fixture package, shared."""
    return analyze([FIXTURES_DIR], det_scope=FIXTURES_SCOPE)


@pytest.fixture(scope="session")
def repo_report():
    """One analysis run over the real ``repro`` package, shared."""
    return analyze(["repro"])
