"""R4.wall-clock: reading real time inside model code."""

import time


def stamp():
    return time.time()  # the violation: wall clock, not the sim clock
