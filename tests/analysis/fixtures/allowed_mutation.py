"""A real R1 violation waived in place with ``# repro: allow[...]``.

The analyzer must report it as *suppressed*: invisible by default,
visible again under ``--no-suppress``.
"""

from typing import Iterable, Tuple

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class MemoizingPre(Automaton):
    SIGNATURE = {"probe": ActionKind.OUTPUT}

    def _state(self) -> None:
        self.cache = {}

    def _pre_probe(self, m) -> bool:
        # repro: allow[R1.write] - memoization cache, not automaton state
        self.cache.setdefault(m, True)
        return self.cache[m]

    def _eff_probe(self, m) -> None:
        self.cache.pop(m, None)

    def _candidates_probe(self) -> Iterable[Tuple[str]]:
        yield ("m",)
