"""R3.unknown-projection: a projection keyed on an undeclared action."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class BadProjection(Automaton):
    SIGNATURE = {"go": ActionKind.INPUT}
    # the violation: "gone" is not a declared action
    PARAM_PROJECTIONS = {"gone": lambda p, v: (p,)}

    def _state(self) -> None:
        self.where = None

    def _eff_go(self, p) -> None:
        self.where = p
