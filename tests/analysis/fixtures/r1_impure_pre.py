"""R1.write: a precondition that mutates automaton state."""

from typing import Iterable, Tuple

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class ImpurePre(Automaton):
    SIGNATURE = {"send": ActionKind.OUTPUT}

    def _state(self) -> None:
        self.queue = []

    def _pre_send(self, m) -> bool:
        self.queue.append(m)  # the violation: a guard that writes state
        return True

    def _eff_send(self, m) -> None:
        self.queue.pop(0)

    def _candidates_send(self) -> Iterable[Tuple[str]]:
        yield ("m",)
