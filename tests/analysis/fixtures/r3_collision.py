"""R3.suffix-collision: two action names sharing one method suffix."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class CollidingNames(Automaton):
    # the violation: both names map to the method suffix "ping_pong"
    SIGNATURE = {
        "ping.pong": ActionKind.INPUT,
        "ping_pong": ActionKind.INPUT,
    }

    def _state(self) -> None:
        self.hits = 0

    def _eff_ping_pong(self) -> None:
        self.hits += 1
