"""R2.parent-write: a child effect mutating parent-owned state."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class BaseLayer(Automaton):
    SIGNATURE = {"push": ActionKind.INPUT}

    def _state(self) -> None:
        self.log = []

    def _eff_push(self, m) -> None:
        self.log.append(m)


class ChildLayer(BaseLayer):
    def _state(self) -> None:
        self.extra = 0

    def _eff_push(self, m) -> None:
        self.extra += 1
        self.log.append(m)  # the violation: ``log`` belongs to BaseLayer
