"""R3.dangling-method: the classic ``_pre_veiw`` typo."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class TypoView(Automaton):
    SIGNATURE = {"view": ActionKind.INPUT}

    def _state(self) -> None:
        self.views = []

    def _eff_view(self, v) -> None:
        self.views.append(v)

    def _pre_veiw(self, v) -> bool:  # the violation: matches no action
        return True
