"""R4.set-iteration: hash-order iteration feeding downstream state."""


def drain(a, b):
    out = []
    for item in a | {1, 2, 3}:  # the violation: set union, hash order
        out.append(item)
    return out
