"""Broken: a waiver naming a rule that does not exist.

The allow below suppresses nothing (there is no R9) - dead waivers rot
into false confidence, so suppression hygiene must flag them.
"""

# repro: allow[R9.imaginary] - this rule id is not in the catalogue.
UNUSED = object()
