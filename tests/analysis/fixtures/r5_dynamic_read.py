"""A guard whose read is invisible to the footprint engine.

``_pre_tick`` consults ``hidden`` through ``getattr`` indirection, which
the static read-set cannot see.  Static rules pass (nothing conflicts);
only the runtime read-parity probe (``R5.read-parity``) can catch the
under-approximation - the test battery points
``diff_read_fingerprints`` at this class directly.
"""

from typing import Iterable, Tuple

from repro.ioa import ActionKind, Automaton


class SneakyGuard(Automaton):
    SIGNATURE = {
        "tick": ActionKind.INTERNAL,  # ()
    }

    def _state(self) -> None:
        self.hidden = True
        self.count = 0

    def _pre_tick(self) -> bool:
        return bool(getattr(self, "hid" + "den"))

    def _eff_tick(self) -> None:
        self.count += 1

    def _candidates_tick(self) -> Iterable[Tuple]:
        yield ()
