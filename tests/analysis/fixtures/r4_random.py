"""R4.unseeded-random: consuming the process-global RNG."""

import random


def pick(options):
    return random.choice(options)  # the violation: unseeded global RNG
