"""The r5_conflict race again, but waived with a documented allow.

The emit/discard interference is declared intentional, so the R5 finding
must be recorded as suppressed - present in the report, not active.
"""

from typing import Any, Iterable, List, Tuple

from repro.ioa import ActionKind, Automaton


# repro: allow[R5] - the emit/discard race is this fixture's point: the
# scheduler is meant to explore both resolutions of the nondeterminism.
class WaivedRacingQueue(Automaton):
    SIGNATURE = {
        "push": ActionKind.INPUT,  # (item,)
        "emit": ActionKind.OUTPUT,  # (item,)
        "discard": ActionKind.INTERNAL,  # ()
    }

    def _state(self) -> None:
        self.queue: List[Any] = []

    def _eff_push(self, item: Any) -> None:
        self.queue.append(item)

    def _pre_emit(self, item: Any) -> bool:
        return bool(self.queue) and self.queue[0] == item

    def _eff_emit(self, item: Any) -> None:
        self.queue.pop(0)

    def _candidates_emit(self) -> Iterable[Tuple[Any]]:
        if self.queue:
            yield (self.queue[0],)

    def _pre_discard(self) -> bool:
        return bool(self.queue)

    def _eff_discard(self) -> None:
        self.queue.pop()

    def _candidates_discard(self) -> Iterable[Tuple]:
        if self.queue:
            yield ()
