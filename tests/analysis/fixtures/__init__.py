"""Deliberately broken automata, one verifier rule per module.

Each fixture module is crafted to trigger exactly one rule of
``repro.analysis`` and no other, so the fixture test can assert the
analyzer's precision (it fires) and its selectivity (nothing else
does).  None of these classes is ever instantiated.
"""
