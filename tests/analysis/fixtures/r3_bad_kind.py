"""R3.bad-kind: a SIGNATURE value that is not an ActionKind."""

from repro.ioa.automaton import Automaton


class StringKind(Automaton):
    SIGNATURE = {"weird": "output"}  # the violation: a bare string kind
