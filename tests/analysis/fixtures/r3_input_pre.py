"""R3.input-precondition: a guard on an input action (never evaluated)."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class GuardedInput(Automaton):
    SIGNATURE = {"receive": ActionKind.INPUT}

    def _state(self) -> None:
        self.inbox = []

    def _pre_receive(self, m) -> bool:  # the violation: inputs are always on
        return bool(m)

    def _eff_receive(self, m) -> None:
        self.inbox.append(m)
