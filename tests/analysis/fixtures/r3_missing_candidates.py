"""R3.missing-candidates: a locally controlled action that never fires."""

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class SilentOutput(Automaton):
    SIGNATURE = {"emit": ActionKind.OUTPUT}  # the violation: no candidates

    def _state(self) -> None:
        self.emitted = []

    def _pre_emit(self, m) -> bool:
        return True

    def _eff_emit(self, m) -> None:
        self.emitted.append(m)
