"""R1.calls-effect: a precondition that takes the transition itself."""

from typing import Iterable, Tuple

from repro.ioa.action import ActionKind
from repro.ioa.automaton import Automaton


class EagerPre(Automaton):
    SIGNATURE = {"fire": ActionKind.INTERNAL}

    def _state(self) -> None:
        self.fired = False

    def _pre_fire(self) -> bool:
        self._eff_fire()  # the violation: evaluating the guard fires it
        return True

    def _eff_fire(self) -> None:
        self.fired = True

    def _candidates_fire(self) -> Iterable[Tuple]:
        yield ()
