"""The interference relation and its exported commutativity table."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.discovery import load_targets
from repro.analysis.interference import (
    action_footprint,
    interference_table,
    table_json,
)
from repro.analysis.rules import make_class_index

from tests.analysis.conftest import FIXTURES_DIR


@pytest.fixture(scope="module")
def fixture_index():
    targets = load_targets((FIXTURES_DIR,))
    return targets, make_class_index(targets)


@pytest.fixture(scope="module")
def repo_table():
    targets = load_targets(("repro",))
    index = make_class_index(targets)
    return interference_table(targets.classes, index)


def test_conflicting_footprints_witness_the_shared_attr(fixture_index):
    from tests.analysis.fixtures.r5_conflict import RacingQueue

    _targets, index = fixture_index
    emit = action_footprint(RacingQueue, "emit", index)
    discard = action_footprint(RacingQueue, "discard", index)
    assert emit.conflicts_with(discard) == ["queue"]
    assert not emit.commutes_with(discard)


def test_state_version_never_witnesses_a_conflict(fixture_index):
    """Every action bumps _state_version; it would make R5 vacuous."""
    from tests.analysis.fixtures.r5_conflict import RacingQueue

    _targets, index = fixture_index
    emit = action_footprint(RacingQueue, "emit", index)
    assert "_state_version" not in emit.conflicts_with(emit)


def test_table_lists_endpoint_actions_conflicts_and_ordering(repo_table):
    key = next(k for k in repo_table["automata"] if k.endswith(".GcsEndpoint"))
    entry = repo_table["automata"][key]
    assert {"deliver", "view", "co_rfifo.send"} <= set(entry["actions"])
    conflict_pairs = {tuple(c["pair"]) for c in entry["conflicts"]}
    assert ("deliver", "view") in conflict_pairs
    # The declared drain barrier ships in the table so consumers (POR,
    # humans) can see which conflicts are ordered away.
    assert "deliver" in entry["ordering"] and "view" in entry["ordering"]


def test_commutes_and_conflicts_partition_the_pairs(repo_table):
    for entry in repo_table["automata"].values():
        commutes = {tuple(pair) for pair in entry["commutes"]}
        conflicts = {tuple(c["pair"]) for c in entry["conflicts"]}
        assert not commutes & conflicts


def test_table_json_is_canonical(repo_table):
    payload = table_json(repo_table)
    assert payload.endswith("\n")
    assert json.loads(payload) == repo_table
    assert table_json(repo_table) == payload


def test_table_bytes_stable_across_hash_seeds(tmp_path):
    """PYTHONHASHSEED must not leak into the exported table."""
    outputs = []
    for seed in ("0", "1"):
        out = tmp_path / f"table-{seed}.json"
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--interference",
             "--output", str(out), "repro.core"],
            check=True, env=env, capture_output=True,
        )
        outputs.append(out.read_bytes())
    assert outputs[0] == outputs[1]
