"""Each broken fixture triggers exactly its intended rule, nothing else."""

import pytest

# fixture module basename -> the one rule_id it must trigger
EXPECTED = {
    "r1_impure_pre": "R1.write",
    "r1_effect_call": "R1.calls-effect",
    "r2_parent_write": "R2.parent-write",
    "r3_dangling": "R3.dangling-method",
    "r3_input_pre": "R3.input-precondition",
    "r3_missing_candidates": "R3.missing-candidates",
    "r3_collision": "R3.suffix-collision",
    "r3_projection": "R3.unknown-projection",
    "r3_bad_kind": "R3.bad-kind",
    "r4_random": "R4.unseeded-random",
    "r4_wallclock": "R4.wall-clock",
    "r4_set_iteration": "R4.set-iteration",
}


def _by_module(report):
    grouped = {}
    for finding in report.findings:
        basename = finding.location.module.rsplit(".", 1)[-1]
        grouped.setdefault(basename, []).append(finding)
    return grouped


@pytest.mark.parametrize("basename,rule_id", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(fixture_report, basename, rule_id):
    found = _by_module(fixture_report).get(basename, [])
    assert [f.rule_id for f in found] == [rule_id]
    assert all(not f.suppressed for f in found)
    assert all(f.location.line > 0 for f in found)


def test_no_findings_outside_the_broken_modules(fixture_report):
    known = set(EXPECTED) | {"allowed_mutation"}
    for finding in fixture_report.findings:
        assert finding.location.module.rsplit(".", 1)[-1] in known


def test_dangling_finding_suggests_the_intended_name(fixture_report):
    (finding,) = _by_module(fixture_report)["r3_dangling"]
    assert "did you mean 'view'" in finding.explanation


def test_findings_render_with_location_and_rule(fixture_report):
    (finding,) = _by_module(fixture_report)["r1_impure_pre"]
    rendered = finding.render()
    assert "r1_impure_pre.py" in rendered
    assert "R1.write" in rendered
    assert "ImpurePre" in rendered
