"""Each broken fixture triggers exactly its intended rule, nothing else."""

import pytest

# fixture module basename -> the one rule_id it must trigger
EXPECTED = {
    "r1_impure_pre": "R1.write",
    "r1_effect_call": "R1.calls-effect",
    "r2_parent_write": "R2.parent-write",
    "r3_dangling": "R3.dangling-method",
    "r3_input_pre": "R3.input-precondition",
    "r3_missing_candidates": "R3.missing-candidates",
    "r3_collision": "R3.suffix-collision",
    "r3_projection": "R3.unknown-projection",
    "r3_bad_kind": "R3.bad-kind",
    "r4_random": "R4.unseeded-random",
    "r4_wallclock": "R4.wall-clock",
    "r4_set_iteration": "R4.set-iteration",
    "r5_conflict": "R5.conflict",
    "sup_unknown": "SUP.unknown-rule",
}


def _by_module(report):
    grouped = {}
    for finding in report.findings:
        basename = finding.location.module.rsplit(".", 1)[-1]
        grouped.setdefault(basename, []).append(finding)
    return grouped


@pytest.mark.parametrize("basename,rule_id", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(fixture_report, basename, rule_id):
    found = _by_module(fixture_report).get(basename, [])
    assert [f.rule_id for f in found] == [rule_id]
    assert all(not f.suppressed for f in found)
    assert all(f.location.line > 0 for f in found)


def test_no_findings_outside_the_broken_modules(fixture_report):
    known = set(EXPECTED) | {"allowed_mutation", "r5_allowed"}
    for finding in fixture_report.findings:
        assert finding.location.module.rsplit(".", 1)[-1] in known


def test_r5_waiver_suppresses_the_conflict(fixture_report):
    """allow[R5] above the class turns the race finding into a waiver."""
    (finding,) = _by_module(fixture_report)["r5_allowed"]
    assert finding.rule_id == "R5.conflict"
    assert finding.suppressed


def test_r5_conflict_names_both_actions_and_the_attr(fixture_report):
    (finding,) = _by_module(fixture_report)["r5_conflict"]
    for fragment in ("emit", "discard", "'queue'"):
        assert fragment in finding.explanation


def test_unknown_waiver_is_not_honoured_as_a_suppression(fixture_report):
    """The dead allow[R9.imaginary] must be flagged, not silently obeyed."""
    (finding,) = _by_module(fixture_report)["sup_unknown"]
    assert finding.rule_id == "SUP.unknown-rule"
    assert not finding.suppressed
    assert "R9.imaginary" in finding.explanation


def test_dangling_finding_suggests_the_intended_name(fixture_report):
    (finding,) = _by_module(fixture_report)["r3_dangling"]
    assert "did you mean 'view'" in finding.explanation


def test_findings_render_with_location_and_rule(fixture_report):
    (finding,) = _by_module(fixture_report)["r1_impure_pre"]
    rendered = finding.render()
    assert "r1_impure_pre.py" in rendered
    assert "R1.write" in rendered
    assert "ImpurePre" in rendered
