"""R6 meta-test: a seeded fast-lane drift mutation must be caught.

The forge style of the verdict battery, applied to the analyzer: take
the *real* ``repro.core.fastpath`` source, splice one spurious write
into a replay body (the mutation a hurried optimisation would make),
and require ``check_r6`` to flag exactly it.  The unmutated source must
stay clean - the rule's power comes from the gap between those two
outcomes.
"""

import ast
import inspect

import pytest

from repro.analysis.discovery import load_targets
from repro.analysis.fastlane import check_r6
from repro.analysis.rules import make_class_index
from repro.core import fastpath
from repro.core.fastpath import REPLAYED_ACTIONS
from repro.core.gcs_endpoint import GcsEndpoint

# Inserted after a genuine try_send write: a membership-state write that
# no claimed transition of the send chain performs.  mbrshp_view is
# written only by _eff_mbrshp_view, which try_send does not claim.
_ANCHOR = "        ep.last_sent = index\n"
_MUTATION = _ANCHOR + "        ep.mbrshp_view = self._view\n"


@pytest.fixture(scope="module")
def lane_checker():
    source = inspect.getsource(fastpath)
    targets = load_targets(("repro.core.fastpath",))
    index = make_class_index(targets)

    def check(text, replays=REPLAYED_ACTIONS):
        tree = ast.parse(text)
        (node,) = [
            n for n in tree.body
            if isinstance(n, ast.ClassDef) and n.name == "FastLane"
        ]
        return check_r6(
            index,
            module_name="repro.core.fastpath",
            path="<mutated>",
            class_node=node,
            replays=replays,
            endpoint_cls=GcsEndpoint,
        )

    return source, check


def test_shipped_fast_lane_is_clean(lane_checker):
    source, check = lane_checker
    assert check(source) == []


def test_seeded_spurious_write_is_flagged(lane_checker):
    source, check = lane_checker
    assert source.count(_ANCHOR) == 1, "mutation anchor drifted"
    findings = check(source.replace(_ANCHOR, _MUTATION))
    assert [f.rule_id for f in findings] == ["R6.spurious-write"]
    (finding,) = findings
    assert "mbrshp_view" in finding.explanation
    assert "try_send" in finding.explanation


def test_unknown_replay_claim_is_flagged(lane_checker):
    source, check = lane_checker
    replays = dict(REPLAYED_ACTIONS)
    replays["try_send"] = ("send", "no.such.action", "deliver")
    findings = check(source, replays=replays)
    assert "R6.unknown-replay" in {f.rule_id for f in findings}


def test_replay_claims_are_complete_and_resolvable():
    """Pin REPLAYED_ACTIONS to the lane: every replay method is claimed
    and every claimed action resolves to a real effect chain."""
    lane_methods = {
        name for name, _ in inspect.getmembers(
            fastpath.FastLane, predicate=inspect.isfunction
        ) if name.startswith("try_")
    }
    assert lane_methods == set(REPLAYED_ACTIONS)
    for method, actions in REPLAYED_ACTIONS.items():
        assert actions, f"{method} claims no transitions"
        for action in actions:
            suffix = action.replace(".", "_")
            assert hasattr(GcsEndpoint, f"_eff_{suffix}"), (
                f"{method} claims {action!r} but the endpoint stack has "
                f"no _eff_{suffix} chain"
            )
