"""--strict-parity: the static and runtime enforcers of [26] agree."""

from repro.analysis import analyze, load_targets
from repro.analysis.parity import diff_ownership, predicted_owners, run_strict_parity
from repro.analysis.rules import make_class_index
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.wv_endpoint import WvRfifoEndpoint


def _index():
    return make_class_index(load_targets(("repro.core",)))


def test_strict_parity_is_clean_on_the_composed_world():
    assert run_strict_parity(_index()) == []


def test_analyze_accepts_the_flag():
    report = analyze(["repro.core"], strict_parity=True)
    assert not [f for f in report.active if f.rule_id == "R2.parity"]


def test_predicted_owners_match_a_real_endpoint():
    index = _index()
    owners = predicted_owners(GcsEndpoint, index)
    assert owners["msgs"] is WvRfifoEndpoint
    assert owners["block_status"] is GcsEndpoint


def test_read_parity_is_clean_on_the_endpoint_stack():
    """The driven endpoint's guards read only what the analyzer sees."""
    from repro.analysis.parity import _seeded_endpoint, diff_read_fingerprints

    findings = diff_read_fingerprints(
        GcsEndpoint, _index(), factory=_seeded_endpoint
    )
    assert findings == []


def test_hidden_guard_read_is_caught_by_the_probe():
    """getattr indirection in a precondition must surface as drift."""
    import os

    from repro.analysis.parity import diff_read_fingerprints

    fixtures = os.path.join(os.path.dirname(__file__), "fixtures")
    index = make_class_index(load_targets((fixtures,)))
    from tests.analysis.fixtures.r5_dynamic_read import SneakyGuard

    findings = diff_read_fingerprints(SneakyGuard, index)
    assert [f.rule_id for f in findings] == ["R5.read-parity"]
    (finding,) = findings
    assert "'hidden'" in finding.explanation
    assert "tick" in finding.explanation


def test_ownership_drift_is_detected():
    index = _index()
    runtime = dict(predicted_owners(GcsEndpoint, index))
    del runtime["msgs"]  # runtime "lost" a variable
    runtime["ghost"] = GcsEndpoint  # and grew one statically invisible
    runtime["block_status"] = WvRfifoEndpoint  # and re-homed another
    findings = diff_ownership(GcsEndpoint, runtime, index)
    assert len(findings) == 3
    assert {f.rule_id for f in findings} == {"R2.parity"}
    texts = " ".join(f.explanation for f in findings)
    assert "msgs" in texts and "ghost" in texts and "block_status" in texts
