"""``# repro: allow[...]`` behaviour: waive, resurface, anchor forms."""

from repro.analysis import analyze
from repro.analysis.suppressions import SuppressionIndex

from tests.analysis.conftest import FIXTURES_DIR, FIXTURES_SCOPE


def _allowed(report):
    return [
        f for f in report.findings
        if f.location.module.endswith("allowed_mutation")
    ]


def test_allowed_violation_is_reported_suppressed(fixture_report):
    (finding,) = _allowed(fixture_report)
    assert finding.suppressed
    assert finding.rule_id == "R1.write"
    assert fixture_report.ok or finding not in fixture_report.active


def test_no_suppress_mode_resurfaces_it():
    report = analyze(
        [FIXTURES_DIR], det_scope=FIXTURES_SCOPE, respect_suppressions=False
    )
    (finding,) = _allowed(report)
    assert not finding.suppressed
    assert finding in report.active


def test_inline_allow_matches_exact_and_coarse_ids():
    index = SuppressionIndex(["x = 1  # repro: allow[R2, R3.dangling-method]"])
    assert index.allows("R2", "R2.parent-write", [1])
    assert index.allows("R3", "R3.dangling-method", [1])
    assert not index.allows("R3", "R3.bad-kind", [1])
    assert not index.allows("R1", "R1.write", [2])


def test_standalone_comment_covers_the_next_code_line():
    index = SuppressionIndex([
        "# repro: allow[R4] - replay-safe, reviewed",
        "# a second, unrelated comment line",
        "for x in {1, 2}:",
    ])
    assert index.allows("R4", "R4.set-iteration", [3])


def test_anchor_lines_let_one_comment_cover_a_method(fixture_report):
    (finding,) = _allowed(fixture_report)
    # the finding anchors at its own line plus def/class context lines
    assert finding.location.line in finding.anchors
    assert len(finding.anchors) >= 2


def test_r5_and_r6_ids_waive_like_any_other_rule():
    index = SuppressionIndex([
        "x = 1  # repro: allow[R5, R6.spurious-write]",
    ])
    assert index.allows("R5", "R5.conflict", [1])
    assert index.allows("R5", "R5.read-parity", [1])
    assert index.allows("R6", "R6.spurious-write", [1])
    assert not index.allows("R6", "R6.unknown-replay", [1])


def test_declared_ids_are_recorded_at_comment_origin_lines():
    """Hygiene checking sees every declared id, valid or not."""
    index = SuppressionIndex([
        "# repro: allow[R5] - a class-level waiver",
        "value = 1  # repro: allow[R9.imaginary]",
    ])
    assert index.declared[1] == {"R5"}
    assert index.declared[2] == {"R9.imaginary"}
