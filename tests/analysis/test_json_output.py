"""The machine-readable surface: JSON schema, exit codes, CLI wiring."""

import json

from repro.__main__ import main as repro_main
from repro.analysis.cli import main as lint_main

from tests.analysis.conftest import FIXTURES_DIR

_FINDING_KEYS = {
    "rule",
    "check",
    "rule_id",
    "severity",
    "file",
    "line",
    "module",
    "object",
    "explanation",
    "suppressed",
}


def test_json_schema_on_clean_repo(capsys):
    assert lint_main(["--format", "json", "repro"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    summary = payload["summary"]
    assert summary["errors"] == 0
    assert summary["classes"] >= 15
    assert summary["elapsed_seconds"] < 5.0
    for finding in payload["findings"]:
        assert set(finding) == _FINDING_KEYS
        assert finding["suppressed"] is True  # clean repo: only waivers


def test_json_exit_code_and_payload_on_violations(capsys):
    code = lint_main(
        ["--format", "json", "--det-scope", "tests.analysis.fixtures", FIXTURES_DIR]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    active = [f for f in payload["findings"] if not f["suppressed"]]
    assert payload["summary"]["errors"] == len(active) > 0
    assert {f["rule"] for f in active} == {"R1", "R2", "R3", "R4", "R5", "SUP"}


def test_lint_subcommand_is_wired_into_repro_main(capsys):
    assert repro_main(["lint", "repro"]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1.write", "R2.parent-write", "R3.dangling-method",
                    "R4.unseeded-random", "R5.conflict", "R5.read-parity",
                    "R6.spurious-write", "R6.unknown-replay",
                    "SUP.unknown-rule"):
        assert rule_id in out


def test_bad_target_exits_2(capsys):
    assert lint_main(["no.such.module"]) == 2
