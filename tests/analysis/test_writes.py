"""Unit coverage of the write-set engine: aliases, helpers, super()."""

import ast

from repro.analysis.writes import method_effects


def _effects(source):
    fn = ast.parse(source).body[0]
    return method_effects(fn)


def _attrs(effects):
    return {w.attr for w in effects.writes}


def test_plain_and_nested_assignments():
    effects = _effects(
        "def f(self):\n"
        "    self.a = 1\n"
        "    self.b[k] = 2\n"
        "    self.c.d = 3\n"
        "    local = 4\n"
    )
    assert _attrs(effects) == {"a", "b", "c"}


def test_alias_tracking_through_locals():
    effects = _effects(
        "def f(self, q, view):\n"
        "    buffers = self.msgs[q]\n"
        "    del buffers[view]\n"
    )
    assert _attrs(effects) == {"msgs"}


def test_alias_through_accessor_and_mutator_calls():
    effects = _effects(
        "def f(self, q, m):\n"
        "    log = self.msgs.get(q)\n"
        "    log.append(m)\n"
        "    self.acked.setdefault(q, {})\n"
    )
    assert _attrs(effects) == {"msgs", "acked"}


def test_rebound_alias_stops_counting():
    effects = _effects(
        "def f(self, m):\n"
        "    buf = self.queue\n"
        "    buf = []\n"
        "    buf.append(m)\n"
    )
    assert _attrs(effects) == set()


def test_reads_are_not_writes():
    effects = _effects(
        "def f(self):\n"
        "    x = self.a\n"
        "    y = len(self.b)\n"
        "    return self.c[0] + x + y\n"
    )
    assert _attrs(effects) == set()


def test_del_and_augmented_assignment():
    effects = _effects(
        "def f(self):\n"
        "    del self.a\n"
        "    del self.b[0]\n"
        "    self.c += 1\n"
    )
    assert _attrs(effects) == {"a", "b", "c"}


def test_helper_effect_and_super_calls_are_separated():
    effects = _effects(
        "def f(self):\n"
        "    self._prune()\n"
        "    self._eff_view(1)\n"
        "    super()._sync()\n"
    )
    assert effects.helper_calls == {"_prune"}
    assert effects.super_calls == {"_sync"}
    assert [name for name, _line in effects.eff_calls] == ["_eff_view"]


def test_framework_mutators_count_as_writes():
    effects = _effects("def f(self):\n    self.touch()\n")
    assert _attrs(effects) == {"_state_version"}


def test_tuple_unpack_tracks_each_alias_pairwise():
    effects = _effects(
        "def f(self, m):\n"
        "    head, tail = self.queue, self.backlog\n"
        "    head.append(m)\n"
        "    tail.clear()\n"
    )
    assert _attrs(effects) == {"queue", "backlog"}


def test_starred_unpack_falls_back_to_conservative_aliasing():
    effects = _effects(
        "def f(self, m):\n"
        "    first, *rest = self.parts\n"
        "    first.append(m)\n"
    )
    assert _attrs(effects) == {"parts"}


def test_deque_bisect_and_heapq_mutators_count_as_writes():
    effects = _effects(
        "def f(self, m):\n"
        "    self.pending.extendleft([m])\n"
        "    self.window.rotate(1)\n"
        "    insort(self.ordered, m)\n"
        "    heapq.heappush(self.heap, m)\n"
    )
    assert _attrs(effects) == {"pending", "window", "ordered", "heap"}


def test_subscript_writes_carry_key_sensitivity():
    effects = _effects(
        "def f(self, q, m):\n"
        "    self.slots[q] = m\n"
        "    self.meta['fixed'] = m\n"
        "    self.blob[q + 1] = m\n"
    )
    keyed = {(w.attr, w.key) for w in effects.writes}
    assert ("slots", "p:q") in keyed
    assert ("meta", "k:'fixed'") in keyed
    assert ("blob", None) in keyed


def test_reads_carry_key_sensitivity():
    effects = _effects(
        "def f(self, q):\n"
        "    a = self.table[q]\n"
        "    b = self.table['fixed']\n"
        "    return a, b, self.flag\n"
    )
    keyed = {(r.attr, r.key) for r in effects.reads}
    assert ("table", "p:q") in keyed
    assert ("table", "k:'fixed'") in keyed
    assert ("flag", None) in keyed


def test_keys_may_alias_semantics():
    from repro.analysis.writes import keys_may_alias

    assert not keys_may_alias("k:'a'", "k:'b'")  # distinct constants
    assert keys_may_alias("k:'a'", "k:'a'")
    assert keys_may_alias("p:q", "k:'a'")  # a parameter takes any value
    assert keys_may_alias("p:q", "p:r")
    assert keys_may_alias(None, "k:'a'")  # unknown aliases everything
