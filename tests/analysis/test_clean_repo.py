"""The repository's own automata pass the verifier (tier-1 gate)."""

from repro.analysis import DEFAULT_DET_SCOPE, RULE_CATALOGUE, analyze
from repro.analysis.runner import _in_scope


def test_repo_is_clean(repo_report):
    assert repo_report.ok, "\n".join(f.render() for f in repo_report.active)


def test_fastpath_is_in_determinism_scope():
    # The steady-state fast lane replays automaton effects directly, so
    # it must stay under the R4 determinism rule like the engine itself.
    assert _in_scope("repro.core.fastpath", DEFAULT_DET_SCOPE)
    assert _in_scope("repro.links.batch", DEFAULT_DET_SCOPE)


def test_repo_coverage(repo_report):
    # every Automaton subclass in the tree is actually discovered
    assert repo_report.classes >= 15
    assert repo_report.modules >= 50


def test_repo_suppressions_are_all_known_rules(repo_report):
    # the deliberate allow[...] waivers map to catalogued rules
    assert repo_report.suppressed, "expected deliberate waivers in the repo"
    for finding in repo_report.suppressed:
        assert finding.rule_id in RULE_CATALOGUE


def test_analyzer_is_fast(repo_report):
    # acceptance: the full-repo scan stays well under five seconds
    assert repo_report.elapsed < 5.0


def test_repo_violations_resurface_without_suppressions():
    report = analyze(["repro"], respect_suppressions=False)
    active_ids = {f.rule_id for f in report.active}
    # the garbage-collection writes and the trace-driven spec actions
    assert "R2.parent-write" in active_ids
    assert "R3.missing-candidates" in active_ids
