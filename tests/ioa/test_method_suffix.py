"""method_suffix round-tripping and collision detection."""

import pytest

from repro.errors import AmbiguousActionName
from repro.ioa import action as action_module
from repro.ioa.action import method_suffix


@pytest.fixture(autouse=True)
def _fresh_registry(monkeypatch):
    """Isolate the global suffix registry per test."""
    monkeypatch.setattr(action_module, "_suffix_owner", {})
    monkeypatch.setattr(action_module, "_suffix_cache", {})


def test_dots_become_underscores():
    assert method_suffix("mbrshp.start_change") == "mbrshp_start_change"
    assert method_suffix("send") == "send"


def test_repeated_lookups_are_stable():
    assert method_suffix("co_rfifo.deliver") == method_suffix("co_rfifo.deliver")


def test_distinct_names_with_distinct_suffixes_coexist():
    assert method_suffix("a.b") == "a_b"
    assert method_suffix("a.c") == "a_c"


def test_colliding_names_raise():
    method_suffix("ping.pong")
    with pytest.raises(AmbiguousActionName, match="ping_pong"):
        method_suffix("ping_pong")


def test_collision_message_names_both_actions():
    method_suffix("a.b_c")
    with pytest.raises(AmbiguousActionName, match=r"a\.b_c.*a_b\.c"):
        method_suffix("a_b.c")


def test_original_owner_keeps_working_after_a_collision():
    method_suffix("ping.pong")
    with pytest.raises(AmbiguousActionName):
        method_suffix("ping_pong")
    assert method_suffix("ping.pong") == "ping_pong"
