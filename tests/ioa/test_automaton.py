"""Unit tests for the I/O automaton framework and the inheritance
construct of [26] (paper Section 2)."""

import pytest

from repro.errors import ActionNotEnabled, InheritanceError, UnknownAction
from repro.ioa import Action, ActionKind, Automaton


class Counter(Automaton):
    """A toy automaton: inc is enabled while value < limit."""

    SIGNATURE = {
        "inc": ActionKind.OUTPUT,
        "poke": ActionKind.INPUT,
    }

    def __init__(self, name="counter", limit=3, **kwargs):
        self.limit = limit
        super().__init__(name, **kwargs)

    def _state(self):
        self.value = 0
        self.pokes = 0

    def _pre_inc(self, amount):
        return self.value + amount <= self.limit

    def _eff_inc(self, amount):
        self.value += amount

    def _candidates_inc(self):
        if self.value < self.limit:
            yield (1,)

    def _eff_poke(self):
        self.pokes += 1


class EvenCounter(Counter):
    """Child: restricts inc to keep the value even; adds a log and an
    extended-signature action."""

    SIGNATURE = {
        "inc": ActionKind.OUTPUT,  # modified: extra param `note`
        "reset": ActionKind.INTERNAL,  # new
    }

    PARAM_PROJECTIONS = {
        "inc": lambda amount, note: (amount,),
    }

    def _state(self):
        self.notes = []

    def _pre_inc(self, amount, note):
        return (self.value + amount) % 2 == 0

    def _eff_inc(self, amount, note):
        self.notes.append(note)

    def _candidates_inc(self):
        if self.value < self.limit:
            yield (2, "step")

    def _pre_reset(self):
        return self.value > 0

    def _eff_reset(self):
        self.notes.append("reset")

    def _candidates_reset(self):
        if self.value > 0:
            yield ()


class BadChild(Counter):
    """Violates [26]: its added effect writes the parent's variable."""

    SIGNATURE = {"inc": ActionKind.OUTPUT}
    PARAM_PROJECTIONS = {"inc": lambda amount: (amount,)}

    def _pre_inc(self, amount):
        return True

    def _eff_inc(self, amount):
        self.value += 100  # forbidden: parent state


class TestSignature:
    def test_merged_signature_includes_parent_and_child(self):
        child = EvenCounter()
        assert child.signature["inc"] is ActionKind.OUTPUT
        assert child.signature["reset"] is ActionKind.INTERNAL
        assert child.signature["poke"] is ActionKind.INPUT

    def test_kind_of_unknown_action_raises(self):
        with pytest.raises(UnknownAction):
            Counter().kind_of("nope")

    def test_locally_controlled(self):
        assert set(EvenCounter().locally_controlled()) == {"inc", "reset"}

    def test_accepts_only_inputs(self):
        c = Counter()
        assert c.accepts(Action("poke", ()))
        assert not c.accepts(Action("inc", (1,)))


class TestTransitions:
    def test_precondition_and_effect(self):
        c = Counter()
        assert c.is_enabled(Action("inc", (1,)))
        c.apply(Action("inc", (2,)))
        assert c.value == 2

    def test_disabled_action_raises(self):
        c = Counter(limit=1)
        with pytest.raises(ActionNotEnabled):
            c.apply(Action("inc", (5,)))

    def test_input_always_enabled(self):
        c = Counter()
        assert c.is_enabled(Action("poke", ()))
        c.apply(Action("poke", ()))
        assert c.pokes == 1

    def test_enabled_actions_uses_candidates(self):
        c = Counter()
        assert c.enabled_actions() == [Action("inc", (1,))]
        c.value = c.limit
        assert c.enabled_actions() == []

    def test_unknown_action_not_enabled(self):
        assert not Counter().is_enabled(Action("bogus", ()))


class TestInheritance:
    def test_child_preconditions_are_conjoined(self):
        child = EvenCounter()
        # amount 1 would satisfy the parent but not the child's evenness.
        assert not child.is_enabled(Action("inc", (1, "n")))
        assert child.is_enabled(Action("inc", (2, "n")))

    def test_child_effects_run_and_parent_effects_run(self):
        child = EvenCounter()
        child.apply(Action("inc", (2, "hello")))
        assert child.value == 2  # parent effect, via projection
        assert child.notes == ["hello"]  # child effect

    def test_param_projection_drops_child_params_for_parent(self):
        child = EvenCounter(limit=2)
        child.apply(Action("inc", (2, "x")))
        # parent pre with amount=2 now fails (2+2 > limit)
        assert not child.is_enabled(Action("inc", (2, "y")))

    def test_new_child_action(self):
        child = EvenCounter()
        child.apply(Action("inc", (2, "x")))
        child.apply(Action("reset", ()))
        assert "reset" in child.notes

    def test_state_ownership_recorded_per_class(self):
        child = EvenCounter()
        owners = child._owners
        assert owners["value"] is Counter
        assert owners["notes"] is EvenCounter

    def test_strict_mode_catches_parent_state_write(self):
        bad = BadChild(strict=True)
        with pytest.raises(InheritanceError):
            bad.apply(Action("inc", (1,)))

    def test_non_strict_mode_does_not_check(self):
        bad = BadChild(strict=False)
        bad.apply(Action("inc", (1,)))  # no error; value corrupted
        assert bad.value == 101

    def test_trace_projection_property(self):
        # Child traces projected onto the parent signature are parent
        # traces: replay the child's inc steps into a fresh parent.
        child = EvenCounter(limit=4)
        parent = Counter(limit=4)
        for _ in range(2):
            for action in child.enabled_actions():
                if action.name == "inc":
                    child.apply(action)
                    projected = Action("inc", (action.params[0],))
                    assert parent.is_enabled(projected)
                    parent.apply(projected)
        assert parent.value == child.value


class TestReset:
    def test_reset_state_restores_initial_values(self):
        child = EvenCounter()
        child.apply(Action("inc", (2, "x")))
        child.reset_state()
        assert child.value == 0
        assert child.notes == []

    def test_reset_preserves_configuration(self):
        c = Counter(limit=7)
        c.apply(Action("inc", (1,)))
        c.reset_state()
        assert c.limit == 7


class TestTasks:
    def test_default_task_partition_is_per_action(self):
        tasks = EvenCounter().tasks()
        assert tasks == {"inc": ["inc"], "reset": ["reset"]}

    def test_state_vars_snapshot(self):
        child = EvenCounter()
        variables = child.state_vars()
        assert set(variables) >= {"value", "pokes", "notes"}
