"""Unit tests for composition and hiding (paper Section 2)."""

import pytest

from repro.errors import ActionNotEnabled, CompositionError
from repro.ioa import Action, ActionKind, Automaton, Composition


class Producer(Automaton):
    SIGNATURE = {"emit": ActionKind.OUTPUT}

    def _state(self):
        self.remaining = 2

    def _pre_emit(self, value):
        return self.remaining > 0

    def _eff_emit(self, value):
        self.remaining -= 1

    def _candidates_emit(self):
        if self.remaining > 0:
            yield (self.remaining,)


class Consumer(Automaton):
    SIGNATURE = {"emit": ActionKind.INPUT}

    def _state(self):
        self.seen = []

    def _eff_emit(self, value):
        self.seen.append(value)


class PickyConsumer(Consumer):
    """Only accepts even values (models per-process subscripting)."""

    def accepts(self, action):
        return super().accepts(action) and action.params[0] % 2 == 0


class InternalHolder(Automaton):
    SIGNATURE = {"tick": ActionKind.INTERNAL}

    def _pre_tick(self):
        return True


class TickObserver(Automaton):
    SIGNATURE = {"tick": ActionKind.INPUT}


def test_execute_matches_output_with_inputs():
    producer, consumer = Producer("p"), Consumer("c")
    system = Composition([producer, consumer])
    system.execute(producer, Action("emit", (2,)))
    assert consumer.seen == [2]
    assert producer.remaining == 1


def test_accepts_filter_excludes_component():
    producer, picky = Producer("p"), PickyConsumer("c")
    system = Composition([producer, picky])
    system.execute(producer, Action("emit", (2,)))
    producer.remaining = 1
    system.execute(producer, Action("emit", (1,)))
    assert picky.seen == [2]


def test_execute_requires_enabled_owner():
    producer, consumer = Producer("p"), Consumer("c")
    producer.remaining = 0
    system = Composition([producer, consumer])
    with pytest.raises(ActionNotEnabled):
        system.execute(producer, Action("emit", (1,)))


def test_inject_feeds_inputs_from_environment():
    consumer = Consumer("c")
    system = Composition([consumer])
    system.inject(Action("emit", (9,)))
    assert consumer.seen == [9]


def test_inject_without_acceptor_raises():
    system = Composition([Producer("p")])
    with pytest.raises(ActionNotEnabled):
        system.inject(Action("emit", (1,)))


def test_duplicate_component_names_rejected():
    with pytest.raises(CompositionError):
        Composition([Producer("x"), Consumer("x")])


def test_internal_action_name_clash_rejected():
    with pytest.raises(CompositionError):
        Composition([InternalHolder("i"), TickObserver("o")])


def test_enabled_actions_across_components():
    producer = Producer("p")
    system = Composition([producer, Consumer("c")])
    enabled = system.enabled_actions()
    assert (producer, Action("emit", (2,))) in enabled


def test_quiescence():
    producer, consumer = Producer("p"), Consumer("c")
    system = Composition([producer, consumer])
    assert not system.quiescent()
    system.execute(producer, Action("emit", (2,)))
    system.execute(producer, Action("emit", (1,)))
    assert system.quiescent()


def test_trace_records_steps_with_owner_and_kind():
    producer, consumer = Producer("p"), Consumer("c")
    system = Composition([producer, consumer])
    system.execute(producer, Action("emit", (2,)))
    event = system.trace[0]
    assert event.owner == "p"
    assert event.kind is ActionKind.OUTPUT


def test_hide_reclassifies_output_as_internal():
    producer, consumer = Producer("p"), Consumer("c")
    system = Composition([producer, consumer]).hide(["emit"])
    system.execute(producer, Action("emit", (2,)))
    assert system.trace[0].kind is ActionKind.INTERNAL
    assert system.trace.external() == []


def test_component_lookup():
    producer = Producer("p")
    system = Composition([producer, Consumer("c")])
    assert system.component("p") is producer
