"""Unit tests for trace recording and projection."""

from repro.ioa import Action, ActionKind, Trace


def build_trace():
    trace = Trace()
    trace.record(Action("a", (1,)), "p", ActionKind.OUTPUT)
    trace.record(Action("b", ()), "q", ActionKind.INTERNAL)
    trace.record(Action("a", (2,)), "p", ActionKind.OUTPUT)
    trace.record(Action("c", ()), "env", ActionKind.INPUT)
    return trace


def test_len_and_indexing():
    trace = build_trace()
    assert len(trace) == 4
    assert trace[0].action == Action("a", (1,))
    assert trace[0].index == 0


def test_events_filter_by_name():
    trace = build_trace()
    assert [e.action.params for e in trace.events("a")] == [(1,), (2,)]


def test_events_filter_by_predicate():
    trace = build_trace()
    only_q = trace.events(where=lambda e: e.owner == "q")
    assert len(only_q) == 1


def test_external_excludes_internal():
    trace = build_trace()
    assert [e.action.name for e in trace.external()] == ["a", "a", "c"]


def test_project_onto_signature():
    trace = build_trace()
    assert [e.action.name for e in trace.project({"b", "c"})] == ["b", "c"]


def test_actions_listing():
    assert [a.name for a in build_trace().actions()] == ["a", "b", "a", "c"]
