"""Differential tests for the compiled transition-chain engine and the
composition's dirty-tracking enabled-set cache.

Every test here pits the hot path (compiled chains, version-keyed caches)
against the reflective oracle that survives as ``naive_enabled_actions``:
the two must agree exactly - same actions, same order - or seeded
schedules would stop replaying.
"""

import random

import pytest

from repro.errors import InheritanceError
from repro.ioa import (
    Action,
    ActionKind,
    Automaton,
    Composition,
    FairScheduler,
)


class Counter(Automaton):
    SIGNATURE = {
        "inc": ActionKind.OUTPUT,
        "poke": ActionKind.INPUT,
    }

    def __init__(self, name="counter", limit=3, **kwargs):
        self.limit = limit
        super().__init__(name, **kwargs)

    def _state(self):
        self.value = 0
        self.pokes = 0

    def _pre_inc(self, amount):
        return self.value + amount <= self.limit

    def _eff_inc(self, amount):
        self.value += amount

    def _candidates_inc(self):
        if self.value < self.limit:
            yield (1,)

    def _eff_poke(self):
        self.pokes += 1


class EvenCounter(Counter):
    """Child with a projection, a modified action and a new one."""

    SIGNATURE = {
        "inc": ActionKind.OUTPUT,  # modified: extra param `note`
        "reset": ActionKind.INTERNAL,  # new
    }

    PARAM_PROJECTIONS = {
        "inc": lambda amount, note: (amount,),
    }

    def _state(self):
        self.notes = []

    def _pre_inc(self, amount, note):
        return (self.value + amount) % 2 == 0

    def _eff_inc(self, amount, note):
        self.notes.append(note)

    def _candidates_inc(self):
        if self.value < self.limit:
            yield (2, "step")

    def _pre_reset(self):
        return self.value > 0

    def _eff_reset(self):
        self.notes.append("reset")

    def _candidates_reset(self):
        if self.value > 0:
            yield ()


class MutatingChild(Counter):
    """Violates the ownership rule by mutating the parent's variable."""

    SIGNATURE = {"inc": ActionKind.OUTPUT}

    def _eff_inc(self, amount):
        self.value += 100  # illegal: value is owned by Counter


class ListParent(Automaton):
    SIGNATURE = {"grow": ActionKind.OUTPUT}

    def _state(self):
        self.log = []

    def _eff_grow(self):
        self.log.append(len(self.log))

    def _candidates_grow(self):
        if len(self.log) < 3:
            yield ()


class InPlaceMutator(ListParent):
    """Mutates the parent's list *in place* (no rebinding)."""

    SIGNATURE = {"grow": ActionKind.OUTPUT}

    def _eff_grow(self):
        self.log.append("sneaky")


class UnpicklableParent(Automaton):
    SIGNATURE = {"go": ActionKind.OUTPUT}

    def _state(self):
        self.fn = lambda: None  # defeats the pickle fingerprint
        self.count = 0

    def _eff_go(self):
        self.count += 1

    def _candidates_go(self):
        if self.count < 2:
            yield ()


class UnpicklableViolator(UnpicklableParent):
    SIGNATURE = {"go": ActionKind.OUTPUT}

    def _eff_go(self):
        self.count += 10  # illegal, and only deepcopy can tell


# ---------------------------------------------------------------------------
# compiled chains vs the reflective oracle
# ---------------------------------------------------------------------------


def test_compiled_enabled_set_matches_naive_through_a_run():
    auto = EvenCounter(limit=6)
    for _ in range(10):
        assert auto.enabled_actions() == auto.naive_enabled_actions()
        enabled = auto.enabled_actions()
        if not enabled:
            break
        auto.apply(enabled[0])
    assert auto.enabled_actions() == auto.naive_enabled_actions()


def test_compiled_precondition_matches_naive_on_projected_chain():
    auto = EvenCounter(limit=6)
    for action in [
        Action("inc", (2, "a")),
        Action("inc", (1, "b")),
        Action("inc", (7, "c")),
        Action("reset", ()),
    ]:
        assert auto.precondition(action) == auto._naive_precondition(action)


def test_compiled_effects_run_child_first_with_projection():
    auto = EvenCounter(limit=6)
    auto.apply(Action("inc", (2, "hello")))
    assert auto.value == 2  # parent effect saw the projected params
    assert auto.notes == ["hello"]


def test_strict_mode_still_catches_rebinding_violation():
    auto = MutatingChild(strict=True)
    with pytest.raises(InheritanceError, match="modified parent variable 'value'"):
        auto.apply(Action("inc", (1,)))


def test_strict_mode_still_catches_in_place_mutation():
    auto = InPlaceMutator(name="sneak", strict=True)
    with pytest.raises(InheritanceError, match="modified parent variable 'log'"):
        auto.apply(Action("grow", ()))


def test_strict_mode_unpicklable_state_falls_back_to_deepcopy():
    ok = UnpicklableParent("ok", strict=True)
    ok.apply(Action("go", ()))  # legal effect: no error despite lambda state
    assert ok.count == 1
    bad = UnpicklableViolator("bad", strict=True)
    with pytest.raises(InheritanceError, match="modified parent variable 'count'"):
        bad.apply(Action("go", ()))


# ---------------------------------------------------------------------------
# state versions and cache invalidation
# ---------------------------------------------------------------------------


def test_state_version_bumps_on_apply_reset_and_touch():
    auto = Counter()
    v0 = auto.state_version
    auto.apply(Action("inc", (1,)))
    assert auto.state_version > v0
    v1 = auto.state_version
    auto.touch()
    assert auto.state_version > v1
    v2 = auto.state_version
    auto.reset_state()
    assert auto.state_version > v2
    assert auto.value == 0


def test_composition_cache_tracks_execution():
    a, b = Counter("a", limit=2), Counter("b", limit=1)
    system = Composition([a, b])
    for _ in range(5):
        cached = system.enabled_actions()
        assert cached == system.naive_enabled_actions()
        if not cached:
            break
        owner, action = cached[0]
        system.execute(owner, action)
    assert system.enabled_actions() == system.naive_enabled_actions()


def test_reset_state_invalidates_cached_enabled_set():
    auto = Counter("a", limit=1)
    system = Composition([auto])
    enabled = system.enabled_actions()
    system.execute(*enabled[0])
    assert system.enabled_actions() == []  # exhausted, and the cache knows
    auto.reset_state()
    # No refresh=True needed: reset_state bumped the version counter.
    assert [a.name for _c, a in system.enabled_actions()] == ["inc"]
    assert system.enabled_actions() == system.naive_enabled_actions()


def test_direct_state_poke_requires_touch_or_refresh():
    auto = Counter("a", limit=3)
    system = Composition([auto])
    assert system.enabled_actions()  # primes the cache
    auto.value = 3  # out-of-band mutation, no apply()
    assert system.enabled_actions(refresh=True) == []
    auto.value = 0
    auto.touch()
    assert [a.name for _c, a in system.enabled_actions()] == ["inc"]


def test_enabled_for_agrees_with_enabled_actions():
    a, b = Counter("a", limit=2), EvenCounter("b", limit=4)
    system = Composition([a, b])
    combined = system.enabled_actions()
    per_component = [
        (c, action) for c in (a, b) for action in system.enabled_for(c)
    ]
    assert combined == per_component


# ---------------------------------------------------------------------------
# kind_of caching
# ---------------------------------------------------------------------------


def test_kind_of_cache_and_hide_invalidation():
    a = Counter("a")
    system = Composition([a])
    assert system.kind_of(Action("inc", (1,))) is ActionKind.OUTPUT
    assert system.kind_of(Action("inc", (1,))) is ActionKind.OUTPUT  # cached
    system.hide(["inc"])
    assert system.kind_of(Action("inc", (1,))) is ActionKind.INTERNAL


# ---------------------------------------------------------------------------
# fair-scheduler order under the deque rotation
# ---------------------------------------------------------------------------


class NaiveFairScheduler:
    """Pre-optimisation replica: list.pop(0)/append and the naive oracle."""

    def __init__(self, system, seed=0):
        self.system = system
        self.rng = random.Random(seed)
        self._queue = []
        for component in system.components:
            for task_name, selector in component.tasks().items():
                self._queue.append((component, task_name, selector))
        self.executed = []

    @staticmethod
    def _in_task(action, selector):
        if callable(selector):
            return bool(selector(action))
        return action.name in selector

    def step(self):
        for _ in range(len(self._queue)):
            component, task_name, selector = self._queue.pop(0)
            self._queue.append((component, task_name, selector))
            actions = [
                action
                for action in component.naive_enabled_actions()
                if self._in_task(action, selector)
            ]
            if actions:
                action = self.rng.choice(actions)
                self.system.execute(component, action)
                self.executed.append((component.name, action))
                return True
        return False

    def run(self, max_steps=10_000):
        executed = 0
        while executed < max_steps and self.step():
            executed += 1
        return executed


def _make_system():
    return Composition(
        [Counter("a", limit=3), EvenCounter("b", limit=6), Counter("c", limit=2)]
    )


def test_fair_scheduler_visit_order_identical_to_naive_replica():
    recorded = []
    fast = FairScheduler(_make_system(), seed=7)
    fast.add_hook(lambda _s, owner, action: recorded.append((owner.name, action)))
    fast_steps = fast.run()

    naive = NaiveFairScheduler(_make_system(), seed=7)
    naive_steps = naive.run()

    assert fast_steps == naive_steps
    assert recorded == naive.executed


def test_fair_scheduler_seed_reproducible():
    runs = []
    for _ in range(2):
        recorded = []
        scheduler = FairScheduler(_make_system(), seed=42)
        scheduler.add_hook(lambda _s, o, a, rec=recorded: rec.append((o.name, a)))
        scheduler.run()
        runs.append(recorded)
    assert runs[0] == runs[1]
