"""Unit tests for the adversarial and fair schedulers."""

from repro.ioa import Action, ActionKind, Automaton, Composition, FairScheduler, RandomScheduler


class Ticker(Automaton):
    """Emits `tick` until exhausted; also has a starvable `rare` action."""

    SIGNATURE = {"tick": ActionKind.OUTPUT, "rare": ActionKind.OUTPUT}

    def __init__(self, name, budget=5, **kwargs):
        self.budget = budget
        super().__init__(name, **kwargs)

    def _state(self):
        self.ticks = 0
        self.rares = 0

    def _pre_tick(self):
        return self.ticks < self.budget

    def _eff_tick(self):
        self.ticks += 1

    def _candidates_tick(self):
        if self.ticks < self.budget:
            yield ()

    def _pre_rare(self):
        return self.rares < 1

    def _eff_rare(self):
        self.rares += 1

    def _candidates_rare(self):
        if self.rares < 1:
            yield ()


def test_random_scheduler_runs_to_quiescence():
    system = Composition([Ticker("t1"), Ticker("t2")])
    steps = RandomScheduler(system, seed=0).run(max_steps=1000)
    assert steps == 12  # 2 * (5 ticks + 1 rare)
    assert system.quiescent()


def test_random_scheduler_reproducible_by_seed():
    def run(seed):
        system = Composition([Ticker("t1"), Ticker("t2")])
        RandomScheduler(system, seed=seed).run(max_steps=1000)
        return [str(e) for e in system.trace]

    assert run(42) == run(42)
    assert run(42) != run(43)  # overwhelmingly likely


def test_random_scheduler_respects_max_steps():
    system = Composition([Ticker("t", budget=100)])
    scheduler = RandomScheduler(system, seed=1)
    assert scheduler.run(max_steps=3) == 3
    assert not system.quiescent()


def test_fair_scheduler_serves_every_task():
    # With per-action tasks, `rare` must run even though `tick` is always
    # enabled - the weak-fairness guarantee the liveness proof relies on.
    ticker = Ticker("t", budget=10**6)
    system = Composition([ticker])
    FairScheduler(system, seed=0).run(max_steps=10)
    assert ticker.rares == 1


def test_fair_scheduler_quiesces():
    system = Composition([Ticker("t", budget=2)])
    steps = FairScheduler(system, seed=0).run(max_steps=100)
    assert steps == 3
    assert system.quiescent()


def test_hooks_called_after_each_step():
    system = Composition([Ticker("t", budget=2)])
    seen = []
    scheduler = RandomScheduler(system, seed=0)
    scheduler.add_hook(lambda sys, owner, action: seen.append(action.name))
    scheduler.run(max_steps=100)
    assert len(seen) == 3


def test_fair_scheduler_callable_task_filters():
    class Selective(Ticker):
        def tasks(self):
            return {
                "ticks-only": lambda action: action.name == "tick",
                "rares-only": lambda action: action.name == "rare",
            }

    selective = Selective("s", budget=3)
    system = Composition([selective])
    FairScheduler(system, seed=0).run(max_steps=100)
    assert selective.ticks == 3
    assert selective.rares == 1
