"""Unit tests for the virtual synchrony + transitional sets end-point
(Figure 10)."""

import pytest

from repro._collections import frozendict
from repro.core.messages import AppMsg, SyncMsg, ViewMsg
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.ioa import Action
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b", "c"], {"a": 1, "b": 1, "c": 1})
V2 = make_view(2, ["a", "b", "c"], {"a": 2, "b": 2, "c": 2})


@pytest.fixture
def ep():
    return VsRfifoTsEndpoint("a", strict=True)


def start_change(p, cid, members):
    return Action("mbrshp.start_change", (p, cid, frozenset(members)))


def wire(q, p, m):
    return Action("co_rfifo.deliver", (q, p, m))


def drain(ep, names=None):
    """Greedily execute enabled actions (optionally only given names)."""
    executed = []
    while True:
        batch = [
            a for a in ep.enabled_actions() if names is None or a.name in names
        ]
        if not batch:
            return executed
        for action in batch:
            if ep.is_enabled(action):
                ep.apply(action)
                executed.append(action)


def bring_to_view(ep, view=V1, peers_sync=True):
    """Walk the endpoint through a full change into ``view``."""
    ep.apply(start_change(ep.pid, view.start_id(ep.pid), view.members))
    drain(ep, {"co_rfifo.reliable"})
    drain(ep, {"co_rfifo.send"})
    if peers_sync:
        for q in sorted(view.members - {ep.pid}):
            sync = SyncMsg(view.start_id(q), initial_view(q), frozendict({q: 0}))
            ep.apply(wire(q, ep.pid, sync))
    ep.apply(Action("mbrshp.view", (ep.pid, view)))
    drain(ep)
    return ep


class TestStartChange:
    def test_widens_reliable_set(self, ep):
        ep.apply(start_change("a", 1, {"a", "b", "c"}))
        desired = ep._desired_reliable_set()
        assert desired == {"a", "b", "c"}
        reliables = [a for a in ep.enabled_actions() if a.name == "co_rfifo.reliable"]
        assert reliables and reliables[0].params[1] == desired

    def test_sync_waits_for_reliable_set(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        syncs = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert syncs == []
        drain(ep, {"co_rfifo.reliable"})
        syncs = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert len(syncs) == 1

    def test_sync_carries_view_cid_and_cut(self, ep):
        ep.apply(Action("send", ("a", "m1")))
        drain(ep, {"co_rfifo.send"})
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable"})
        sync = next(
            a.params[2] for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        )
        assert sync.cid == 1
        assert sync.view == initial_view("a")
        assert sync.cut["a"] == 1  # commits to its own sent message

    def test_sync_sent_once_per_change(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        assert ep.own_sync_msg() is not None
        syncs = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert syncs == []

    def test_new_start_change_triggers_new_sync(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable"})
        syncs = [
            a.params[2] for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert [s.cid for s in syncs] == [2]


class TestViewDelivery:
    def test_requires_matching_start_change_id(self, ep):
        # view for cid 1 arrives after the end-point saw start_change 2:
        # it must be suppressed as obsolete.
        ep.apply(start_change("a", 1, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(Action("mbrshp.view", ("a", V1)))  # startId(a)=1, stale
        assert drain(ep, {"view"}) == []
        assert ep.current_view == initial_view("a")

    def test_waits_for_all_intersection_syncs(self, ep):
        ep.apply(start_change("a", 1, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(Action("mbrshp.view", ("a", V1)))
        # a comes from its initial singleton view: intersection is {a},
        # own sync suffices.
        assert drain(ep, {"view"})
        assert ep.current_view == V1

    def test_transitional_set_from_sync_views(self, ep):
        bring_to_view(ep, V1)
        assert ep.current_view == V1
        # now move V1 -> V2 with b moving along, c from elsewhere
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        other = make_view(1, ["b", "c"], {"b": 9, "c": 9})
        ep.apply(wire("c", "a", SyncMsg(2, other, frozendict({"c": 0}))))
        ep.apply(Action("mbrshp.view", ("a", V2)))
        views = drain(ep, {"view"})
        assert views, "view should deliver"
        T = views[0].params[2]
        assert T == {"a", "b"}

    def test_view_effect_clears_start_change(self, ep):
        bring_to_view(ep, V1)
        assert ep.start_change is None

    def test_view_waits_for_cut_agreement(self, ep):
        bring_to_view(ep, V1)
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        # b's cut commits to one message from c that a has not received
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 1}))))
        ep.apply(wire("c", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 1}))))
        ep.apply(Action("mbrshp.view", ("a", V2)))
        assert drain(ep, {"view"}) == []  # missing c's message
        # the message arrives (c had sent it in V1)
        ep.apply(wire("c", "a", ViewMsg(V1)))
        ep.apply(wire("c", "a", AppMsg("mc1")))
        drain(ep, {"deliver"})
        assert drain(ep, {"view"})
        assert ep.current_view == V2


class TestDeliveryRestriction:
    def test_delivery_capped_by_own_cut_before_view(self, ep):
        bring_to_view(ep, V1)
        ep.apply(wire("b", "a", ViewMsg(V1)))
        ep.apply(wire("b", "a", AppMsg("m1")))
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        own = ep.own_sync_msg()
        assert own.cut["b"] == 1
        ep.apply(wire("b", "a", AppMsg("m2")))  # arrives after the cut
        assert ep.is_enabled(Action("deliver", ("a", "b", "m1")))
        ep.apply(Action("deliver", ("a", "b", "m1")))
        assert not ep.is_enabled(Action("deliver", ("a", "b", "m2")))

    def test_delivery_extends_to_transitional_cuts_after_view(self, ep):
        bring_to_view(ep, V1)
        ep.apply(wire("b", "a", ViewMsg(V1)))
        ep.apply(wire("b", "a", AppMsg("m1")))
        ep.apply(start_change("a", 2, {"a", "b", "c"}))
        drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
        ep.apply(wire("b", "a", AppMsg("m2")))
        # b's sync commits to 2 of its own messages
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 2, "c": 0}))))
        ep.apply(Action("mbrshp.view", ("a", V2)))
        ep.apply(Action("deliver", ("a", "b", "m1")))
        assert ep.is_enabled(Action("deliver", ("a", "b", "m2")))

    def test_no_restriction_without_change(self, ep):
        bring_to_view(ep, V1)
        ep.apply(wire("b", "a", ViewMsg(V1)))
        ep.apply(wire("b", "a", AppMsg("m1")))
        assert ep._delivery_limit("b") is None
        assert ep.is_enabled(Action("deliver", ("a", "b", "m1")))


class TestGarbageCollection:
    def test_gc_prunes_old_buffers_and_syncs(self):
        ep = VsRfifoTsEndpoint("a", gc_views=True)
        bring_to_view(ep, V1)
        assert all(view == V1 for buffers in ep.msgs.values() for view in buffers)
        for q, by_cid in ep.sync_msg.items():
            for cid in by_cid:
                assert cid > V1.start_id(q)

    def test_no_gc_by_default(self, ep):
        ep.apply(Action("send", ("a", "m")))
        drain(ep, {"co_rfifo.send"})
        bring_to_view(ep, V1)
        assert ep.peek_buffer("a", initial_view("a")) is not None


class TestHelpers:
    def test_local_cut_counts_longest_prefixes(self, ep):
        bring_to_view(ep, V1)
        ep.apply(wire("c", "a", ViewMsg(V1)))
        ep.apply(wire("c", "a", AppMsg("x")))
        cut = ep.local_cut()
        assert cut["c"] == 1
        assert cut["a"] == 0

    def test_latest_sync_msgs_in_view_picks_highest_cid(self, ep):
        ep.apply(wire("b", "a", SyncMsg(1, initial_view("a"), frozendict())))
        ep.apply(wire("b", "a", SyncMsg(3, initial_view("a"), frozendict())))
        latest = dict(ep.latest_sync_msgs_in_view(initial_view("a")))
        assert latest["b"].cid == 3
