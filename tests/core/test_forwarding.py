"""Unit tests for the forwarding strategies (Section 5.2.2)."""

import pytest

from repro._collections import frozendict
from repro.core.forwarding import (
    MinCopiesStrategy,
    NoForwarding,
    SimpleStrategy,
    strategy_by_name,
)
from repro.core.messages import AppMsg, SyncMsg, ViewMsg
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.ioa import Action
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b", "c"], {"a": 1, "b": 1, "c": 1})
V2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})


def wire(q, p, m):
    return Action("co_rfifo.deliver", (q, p, m))


def drain(ep, names=None):
    while True:
        batch = [a for a in ep.enabled_actions() if names is None or a.name in names]
        if not batch:
            return
        for action in batch:
            if ep.is_enabled(action):
                ep.apply(action)


def make_endpoint(strategy):
    """An endpoint in view V1 that received two messages from c, holding a
    start_change towards V2 where b misses them."""
    ep = VsRfifoTsEndpoint("a", forwarding=strategy, strict=True)
    ep.apply(Action("mbrshp.start_change", ("a", 1, frozenset(V1.members))))
    drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
    for q in "bc":
        ep.apply(wire(q, "a", SyncMsg(1, initial_view(q), frozendict({q: 0}))))
    ep.apply(Action("mbrshp.view", ("a", V1)))
    drain(ep)
    assert ep.current_view == V1
    # receive two messages from c
    ep.apply(wire("c", "a", ViewMsg(V1)))
    ep.apply(wire("c", "a", AppMsg("mc1")))
    ep.apply(wire("c", "a", AppMsg("mc2")))
    # view change towards V2 = {a, b}; c is gone
    ep.apply(Action("mbrshp.start_change", ("a", 2, frozenset(V2.members))))
    drain(ep, {"co_rfifo.reliable", "co_rfifo.send"})
    assert ep.own_sync_msg().cut["c"] == 2
    return ep


class TestSimpleStrategy:
    def test_forwards_messages_missing_at_peer(self):
        ep = make_endpoint(SimpleStrategy())
        # b's sync (sent in V1) shows it has nothing from c
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        candidates = list(ep.forwarding.candidates(ep))
        assert (frozenset({"b"}), "c", V1, 1) in candidates
        assert (frozenset({"b"}), "c", V1, 2) in candidates

    def test_no_forwarding_without_peer_sync(self):
        ep = make_endpoint(SimpleStrategy())
        assert list(ep.forwarding.candidates(ep)) == []

    def test_only_missing_suffix_is_forwarded(self):
        ep = make_endpoint(SimpleStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 1}))))
        candidates = list(ep.forwarding.candidates(ep))
        assert (frozenset({"b"}), "c", V1, 1) not in candidates
        assert (frozenset({"b"}), "c", V1, 2) in candidates

    def test_forwarded_set_suppresses_duplicates(self):
        ep = make_endpoint(SimpleStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        sends = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and a.params[2].__class__.__name__ == "FwdMsg"
        ]
        assert sends
        for action in sends:
            ep.apply(action)
        again = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and a.params[2].__class__.__name__ == "FwdMsg"
        ]
        assert again == []

    def test_skips_peers_known_to_have_moved_on(self):
        ep = make_endpoint(SimpleStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        ep.apply(wire("b", "a", ViewMsg(V2)))  # b already reached V2
        assert list(ep.forwarding.candidates(ep)) == []


class TestMinCopiesStrategy:
    def prepared(self):
        ep = make_endpoint(MinCopiesStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        ep.apply(Action("mbrshp.view", ("a", V2)))
        return ep

    def test_waits_for_membership_view(self):
        ep = make_endpoint(MinCopiesStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        assert list(ep.forwarding.candidates(ep)) == []

    def test_single_committed_holder_forwards(self):
        ep = self.prepared()
        candidates = list(ep.forwarding.candidates(ep))
        assert (frozenset({"b"}), "c", V1, 1) in candidates
        assert (frozenset({"b"}), "c", V1, 2) in candidates

    def test_only_min_holder_forwards(self):
        # make b also committed to c's messages: then min(T-holders) is a,
        # and a still forwards; but if a were not committed, it would not.
        ep = self.prepared()
        # replace b's sync with one committing to both messages
        ep.sync_msg["b"][2] = SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 2}))
        assert list(ep.forwarding.candidates(ep)) == []  # b misses nothing

    def test_messages_from_transitional_members_not_forwarded(self):
        # c is outside T here; messages from a or b are never forwarded.
        ep = self.prepared()
        for _targets, origin, _view, _index in ep.forwarding.candidates(ep):
            assert origin == "c"


class TestRegistry:
    def test_strategy_by_name(self):
        assert isinstance(strategy_by_name("simple"), SimpleStrategy)
        assert isinstance(strategy_by_name("min_copies"), MinCopiesStrategy)
        assert isinstance(strategy_by_name("none"), NoForwarding)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            strategy_by_name("bogus")

    def test_no_forwarding_never_proposes(self):
        ep = make_endpoint(NoForwarding())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        assert list(ep.forwarding.candidates(ep)) == []

    def test_allows_agrees_with_candidates(self):
        ep = make_endpoint(SimpleStrategy())
        ep.apply(wire("b", "a", SyncMsg(2, V1, frozendict({"a": 0, "b": 0, "c": 0}))))
        for targets, origin, view, index in ep.forwarding.candidates(ep):
            assert ep.forwarding.allows(ep, targets, origin, view, index)
        assert not ep.forwarding.allows(ep, frozenset({"b"}), "c", V1, 99)
