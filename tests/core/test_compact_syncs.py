"""The Section 5.2.4 optimization: compact synchronization messages.

Processes outside the sender's current view can never include it in
their transitional sets, so they receive a cut-less, view-less sync that
only says "I am not in your transitional set".
"""

import pytest

from repro.checking import check_all_safety, check_liveness
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import SyncMsg
from repro.ioa import Action
from repro.net import ConstantLatency, SimWorld
from repro.types import make_view


def drain(ep, names=None):
    executed = []
    while True:
        batch = [a for a in ep.enabled_actions() if names is None or a.name in names]
        if not batch:
            return executed
        for action in batch:
            if ep.is_enabled(action):
                ep.apply(action)
                executed.append(action)


def sync_sends(ep):
    return [
        a for a in ep.enabled_actions()
        if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
    ]


@pytest.fixture
def ep():
    endpoint = GcsEndpoint("a", compact_syncs=True)
    # settle into a two-member view {a, b}
    v1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
    endpoint.apply(Action("mbrshp.start_change", ("a", 1, frozenset({"a", "b"}))))
    drain(endpoint, {"co_rfifo.reliable", "block"})
    endpoint.apply(Action("block_ok", ("a",)))
    drain(endpoint, {"co_rfifo.send"})
    from repro._collections import frozendict
    from repro.types import initial_view

    endpoint.apply(Action("co_rfifo.deliver", ("b", "a",
                          SyncMsg(1, initial_view("b"), frozendict({"b": 0})))))
    endpoint.apply(Action("mbrshp.view", ("a", v1)))
    drain(endpoint)
    assert endpoint.current_view == v1
    return endpoint


def test_merge_splits_sync_into_two_variants(ep):
    # a merge: start_change towards {a, b, c, d} while a's view is {a, b}
    ep.apply(Action("mbrshp.start_change", ("a", 2, frozenset("abcd"))))
    drain(ep, {"co_rfifo.reliable", "block"})
    ep.apply(Action("block_ok", ("a",)))
    sends = sync_sends(ep)
    by_compact = {m.params[2].compact: m for m in sends}
    assert set(by_compact) == {True, False}
    full, compact = by_compact[False], by_compact[True]
    assert full.params[1] == frozenset({"b"})  # shares the current view
    assert compact.params[1] == frozenset({"c", "d"})  # outside it
    assert compact.params[2].view is None and compact.params[2].cut is None


def test_both_variants_send_once(ep):
    ep.apply(Action("mbrshp.start_change", ("a", 2, frozenset("abcd"))))
    drain(ep, {"co_rfifo.reliable", "block"})
    ep.apply(Action("block_ok", ("a",)))
    executed = drain(ep, {"co_rfifo.send"})
    syncs = [a for a in executed if isinstance(a.params[2], SyncMsg)]
    assert len(syncs) == 2
    assert sync_sends(ep) == []


def test_no_compact_variant_when_sets_coincide(ep):
    ep.apply(Action("mbrshp.start_change", ("a", 2, frozenset({"a", "b"}))))
    drain(ep, {"co_rfifo.reliable", "block"})
    ep.apply(Action("block_ok", ("a",)))
    sends = sync_sends(ep)
    assert len(sends) == 1
    assert not sends[0].params[2].compact


def test_compact_recipient_excludes_sender_from_t():
    ep = GcsEndpoint("a", compact_syncs=True)
    ep.apply(Action("co_rfifo.deliver", ("z", "a", SyncMsg(7, None, None))))
    stored = ep.sync_msg_for("z", 7)
    assert stored is not None and stored.compact
    # a view naming z with that cid can now be delivered with z outside T
    v = make_view(1, ["a", "z"], {"a": 1, "z": 7})
    assert ep.transitional_set_for(v) is None or "z" not in ep.transitional_set_for(v)


def test_estimated_sizes():
    from repro._collections import frozendict

    full = SyncMsg(1, make_view(1, ["a", "b"]), frozendict({"a": 1, "b": 2}))
    assert full.estimated_size() == 1 + 2 + 2
    assert SyncMsg(1, None, None).estimated_size() == 1


class TestEndToEnd:
    def scenario(self, compact):
        world = SimWorld(
            latency=ConstantLatency(1.0),
            membership="oracle",
            round_duration=2.0,
            compact_syncs=compact,
            gc_views=False,
        )
        nodes = world.add_nodes([f"p{i}" for i in range(6)])
        world.start()
        world.run()
        world.partition([["p0", "p1", "p2"], ["p3", "p4", "p5"]])
        world.run()
        for node in nodes:
            node.send("island-" + node.pid)
        world.run()
        world.network.reset_counters()
        world.heal()
        world.run()
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))
        check_liveness(world.trace, final)
        return world

    def test_merge_safe_and_live_with_compact_syncs(self):
        self.scenario(compact=True)

    def test_compact_syncs_reduce_volume_not_count(self):
        plain = self.scenario(compact=False).network
        compact = self.scenario(compact=True).network
        assert compact.sent["SyncMsg"] == plain.sent["SyncMsg"]
        assert compact.volume["SyncMsg"] < plain.volume["SyncMsg"]

    def test_transitional_sets_identical_with_and_without(self):
        t_plain = {
            n.pid: n.views[-1][1] for n in self.scenario(False).nodes.values()
        }
        t_compact = {
            n.pid: n.views[-1][1] for n in self.scenario(True).nodes.values()
        }
        assert t_plain == t_compact
