"""Unit tests for crash and recovery semantics (Section 8)."""

import pytest

from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import ViewMsg, AppMsg
from repro.ioa import Action
from repro.spec.client import BlockStatus
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})


@pytest.fixture
def ep():
    return GcsEndpoint("a")


def crash(p):
    return Action("crash", (p,))


def recover(p):
    return Action("recover", (p,))


def test_crash_disables_locally_controlled_actions(ep):
    ep.apply(Action("send", ("a", "m")))
    assert ep.enabled_actions()
    ep.apply(crash("a"))
    assert ep.enabled_actions() == []


def test_crash_disables_input_effects(ep):
    ep.apply(crash("a"))
    ep.apply(Action("send", ("a", "m")))
    ep.apply(Action("co_rfifo.deliver", ("b", "a", ViewMsg(V1))))
    ep.apply(recover("a"))
    assert ep.peek_buffer("a", initial_view("a")) is None
    assert ep.view_msg == {}


def test_recover_resets_to_initial_state(ep):
    ep.apply(Action("send", ("a", "m")))
    ep.apply(Action("mbrshp.start_change", ("a", 1, frozenset({"a", "b"}))))
    ep.apply(crash("a"))
    ep.apply(recover("a"))
    assert ep.current_view == initial_view("a")
    assert ep.start_change is None
    assert ep.block_status is BlockStatus.UNBLOCKED
    assert ep.last_sent == 0


def test_recover_keeps_identity_and_configuration(ep):
    ep.apply(crash("a"))
    ep.apply(recover("a"))
    assert ep.pid == "a"
    assert ep.forwarding is not None


def test_recover_without_crash_is_a_no_op(ep):
    ep.apply(Action("send", ("a", "m")))
    ep.apply(recover("a"))
    assert ep.peek_buffer("a", initial_view("a")).get(1) == "m"


def test_is_enabled_false_while_crashed(ep):
    ep.apply(crash("a"))
    assert not ep.is_enabled(Action("view", ("a", V1, frozenset())))
    assert ep.is_enabled(recover("a"))


def test_crashed_flag_lifecycle(ep):
    assert not ep.crashed
    ep.apply(crash("a"))
    assert ep.crashed
    ep.apply(recover("a"))
    assert not ep.crashed


def test_rejoin_after_recovery_accepts_new_views(ep):
    ep.apply(crash("a"))
    ep.apply(recover("a"))
    ep.apply(Action("mbrshp.start_change", ("a", 7, frozenset({"a", "b"}))))
    v = make_view(5, ["a", "b"], {"a": 7, "b": 3})
    ep.apply(Action("mbrshp.view", ("a", v)))
    assert ep.mbrshp_view == v
    # Local Monotonicity holds because the membership service's watermarks
    # survive (v.id exceeds anything delivered before the crash).
    assert v.vid > ep.current_view.vid
