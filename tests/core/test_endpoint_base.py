"""Unit tests for the per-process automaton base (subscripting, crash)."""

import pytest

from repro.core.endpoint_base import ProcessAutomaton
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import ViewMsg
from repro.ioa import Action
from repro.types import make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})


@pytest.fixture
def ep():
    return GcsEndpoint("a")


class TestSubscripting:
    def test_first_param_convention(self, ep):
        assert ep.subscript_of(Action("send", ("a", "m"))) == "a"
        assert ep.subscript_of(Action("mbrshp.view", ("b", V1))) == "b"

    def test_deliver_uses_receiver_second(self, ep):
        action = Action("co_rfifo.deliver", ("b", "a", ViewMsg(V1)))
        assert ep.subscript_of(action) == "a"

    def test_accepts_only_own_subscript(self, ep):
        assert ep.accepts(Action("send", ("a", "m")))
        assert not ep.accepts(Action("send", ("b", "m")))
        assert ep.accepts(Action("co_rfifo.deliver", ("b", "a", ViewMsg(V1))))
        assert not ep.accepts(Action("co_rfifo.deliver", ("a", "b", ViewMsg(V1))))

    def test_accepts_rejects_outputs(self, ep):
        assert not ep.accepts(Action("view", ("a", V1, frozenset())))

    def test_empty_params_have_no_subscript(self, ep):
        assert ep.subscript_of(Action("noop", ())) is None


class TestCrashDiscipline:
    def test_locally_controlled_while_crashed_is_a_bug(self, ep):
        ep.apply(Action("send", ("a", "m")))
        pending = ep.enabled_actions()[0]
        ep.apply(Action("crash", ("a",)))
        with pytest.raises(RuntimeError):
            ep.apply(pending)

    def test_double_crash_is_idempotent(self, ep):
        ep.apply(Action("crash", ("a",)))
        ep.apply(Action("crash", ("a",)))
        assert ep.crashed

    def test_name_defaults_to_class_and_pid(self, ep):
        assert ep.name == "GcsEndpoint:a"
