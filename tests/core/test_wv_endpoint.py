"""Unit tests for the within-view reliable FIFO end-point (Figure 9)."""

import pytest

from repro.core.messages import AppMsg, FwdMsg, ViewMsg
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.ioa import Action
from repro.types import initial_view, make_view


@pytest.fixture
def ep():
    return WvRfifoEndpoint("a", strict=True)


def mbrshp_view(p, v):
    return Action("mbrshp.view", (p, v))


def wire_deliver(q, p, m):
    return Action("co_rfifo.deliver", (q, p, m))


V1 = make_view(1, ["a", "b", "c"], {"a": 1, "b": 1, "c": 1})


def install(ep, v=V1):
    ep.apply(mbrshp_view(ep.pid, v))
    ep.apply(Action("view", (ep.pid, v)))
    ep.apply(Action("co_rfifo.reliable", (ep.pid, frozenset(v.members))))
    ep.apply(Action("co_rfifo.send", (ep.pid, frozenset(v.members - {ep.pid}), ViewMsg(v))))


class TestViews:
    def test_membership_view_buffered_then_delivered(self, ep):
        ep.apply(mbrshp_view("a", V1))
        assert ep.mbrshp_view == V1
        assert ep.current_view == initial_view("a")
        assert ep.is_enabled(Action("view", ("a", V1)))
        ep.apply(Action("view", ("a", V1)))
        assert ep.current_view == V1

    def test_view_only_for_current_mbrshp_view(self, ep):
        other = make_view(9, ["a"], {"a": 9})
        assert not ep.is_enabled(Action("view", ("a", other)))

    def test_view_requires_increasing_id(self, ep):
        install(ep)
        stale = make_view(0, ["a"], {"a": 0})
        ep.mbrshp_view = stale  # simulate (would violate MBRSHP anyway)
        assert not ep.is_enabled(Action("view", ("a", stale)))

    def test_view_resets_counters(self, ep):
        install(ep)
        ep.apply(Action("send", ("a", "m")))
        ep.apply(Action("co_rfifo.send", ("a", frozenset({"b", "c"}),
                                          AppMsg("m", V1, 1))))
        v2 = make_view(2, ["a", "b", "c"], {"a": 2, "b": 2, "c": 2})
        ep.apply(mbrshp_view("a", v2))
        ep.apply(Action("view", ("a", v2)))
        assert ep.last_sent == 0
        assert ep.dlvrd("a") == 0


class TestSendPath:
    def test_view_msg_required_before_app_messages(self, ep):
        install_view_only(ep)
        ep.apply(Action("send", ("a", "m1")))
        sends = [a for a in ep.enabled_actions() if a.name == "co_rfifo.send"]
        assert len(sends) == 1
        assert isinstance(sends[0].params[2], ViewMsg)

    def test_view_msg_needs_reliable_superset(self, ep):
        ep.apply(mbrshp_view("a", V1))
        ep.apply(Action("view", ("a", V1)))
        # reliable_set is still {a}: the ViewMsg send must not be offered
        sends = [a for a in ep.enabled_actions() if a.name == "co_rfifo.send"]
        assert sends == []

    def test_app_send_stream_in_fifo_order(self, ep):
        install(ep)
        ep.apply(Action("send", ("a", "m1")))
        ep.apply(Action("send", ("a", "m2")))
        first = next(a for a in ep.enabled_actions() if a.name == "co_rfifo.send")
        assert first.params[2].payload == "m1"
        ep.apply(first)
        second = next(a for a in ep.enabled_actions() if a.name == "co_rfifo.send")
        assert second.params[2].payload == "m2"
        assert ep.last_sent == 1

    def test_app_msg_carries_history_tags(self, ep):
        install(ep)
        ep.apply(Action("send", ("a", "m1")))
        msg = next(a for a in ep.enabled_actions() if a.name == "co_rfifo.send").params[2]
        assert msg.history_view == V1
        assert msg.history_index == 1

    def test_self_delivery_gated_on_wire_send(self, ep):
        install(ep)
        ep.apply(Action("send", ("a", "mine")))
        assert not ep.is_enabled(Action("deliver", ("a", "a", "mine")))
        send = next(a for a in ep.enabled_actions() if a.name == "co_rfifo.send")
        ep.apply(send)
        assert ep.is_enabled(Action("deliver", ("a", "a", "mine")))

    def test_singleton_view_still_pumps_sends(self, ep):
        # In the initial singleton view the no-op wire sends must still be
        # offered, or self-delivery would deadlock.
        ep.apply(Action("send", ("a", "solo")))
        names = [a.name for a in ep.enabled_actions()]
        assert "co_rfifo.send" in names


def install_view_only(ep, v=V1):
    ep.apply(Action("mbrshp.view", (ep.pid, v)))
    ep.apply(Action("view", (ep.pid, v)))
    ep.apply(Action("co_rfifo.reliable", (ep.pid, frozenset(v.members))))


class TestReceivePath:
    def test_app_message_associated_with_latest_view_msg(self, ep):
        install(ep)
        ep.apply(wire_deliver("b", "a", ViewMsg(V1)))
        ep.apply(wire_deliver("b", "a", AppMsg("mb1")))
        assert ep.peek_buffer("b", V1).get(1) == "mb1"
        assert ep.rcvd("b") == 1

    def test_view_msg_resets_received_counter(self, ep):
        install(ep)
        ep.apply(wire_deliver("b", "a", ViewMsg(V1)))
        ep.apply(wire_deliver("b", "a", AppMsg("mb1")))
        v2 = make_view(2, ["a", "b"], {"a": 2, "b": 2})
        ep.apply(wire_deliver("b", "a", ViewMsg(v2)))
        assert ep.rcvd("b") == 0
        ep.apply(wire_deliver("b", "a", AppMsg("mb2")))
        assert ep.peek_buffer("b", v2).get(1) == "mb2"

    def test_delivery_in_view_and_order(self, ep):
        install(ep)
        ep.apply(wire_deliver("b", "a", ViewMsg(V1)))
        ep.apply(wire_deliver("b", "a", AppMsg("mb1")))
        ep.apply(wire_deliver("b", "a", AppMsg("mb2")))
        assert not ep.is_enabled(Action("deliver", ("a", "b", "mb2")))
        ep.apply(Action("deliver", ("a", "b", "mb1")))
        ep.apply(Action("deliver", ("a", "b", "mb2")))
        assert ep.dlvrd("b") == 2

    def test_messages_from_older_view_not_delivered_in_current(self, ep):
        old = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        new = make_view(2, ["a", "b"], {"a": 2, "b": 2})
        ep.apply(wire_deliver("b", "a", ViewMsg(old)))
        ep.apply(wire_deliver("b", "a", AppMsg("stale")))
        install(ep, new)
        assert not ep.is_enabled(Action("deliver", ("a", "b", "stale")))


class TestForwardedMessages:
    def test_forwarded_message_stored_at_index(self, ep):
        install(ep)
        ep.apply(wire_deliver("b", "a", FwdMsg("c", V1, 2, "mc2")))
        assert ep.peek_buffer("c", V1).get(2) == "mc2"
        assert ep.peek_buffer("c", V1).longest_prefix() == 0

    def test_forwarded_fills_hole_and_enables_delivery(self, ep):
        install(ep)
        ep.apply(wire_deliver("b", "a", FwdMsg("c", V1, 2, "mc2")))
        ep.apply(wire_deliver("b", "a", FwdMsg("c", V1, 1, "mc1")))
        ep.apply(Action("deliver", ("a", "c", "mc1")))
        ep.apply(Action("deliver", ("a", "c", "mc2")))
        assert ep.dlvrd("c") == 2

    def test_fwd_send_requires_having_the_message(self, ep):
        install(ep)
        bogus = FwdMsg("c", V1, 1, "never-seen")
        assert not ep.is_enabled(Action("co_rfifo.send", ("a", frozenset({"b"}), bogus)))


class TestReliable:
    def test_reliable_candidates_only_on_change(self, ep):
        install(ep)
        assert not any(a.name == "co_rfifo.reliable" for a in ep.enabled_actions())

    def test_reliable_requires_view_superset(self, ep):
        install_view_only(ep)
        too_small = frozenset({"a"})
        assert not ep.is_enabled(Action("co_rfifo.reliable", ("a", too_small)))
