"""Unit tests for the reactive endpoint runner."""

import pytest

from repro._collections import frozendict
from repro.checking.events import BlockEvent, DeliverEvent, SendEvent, ViewEvent
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import SyncMsg, ViewMsg, AppMsg
from repro.core.runner import EndpointRunner
from repro.errors import ClientMisuseError
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})


class Recorder:
    def __init__(self):
        self.wire = []
        self.reliable = []
        self.delivered = []
        self.views = []

    def make_runner(self, pid="a", **kwargs):
        endpoint = GcsEndpoint(pid)
        return EndpointRunner(
            endpoint,
            send_wire=lambda targets, m: self.wire.append((targets, m)),
            set_reliable=self.reliable.append,
            on_deliver=lambda sender, payload: self.delivered.append((sender, payload)),
            on_view=lambda view, T: self.views.append((view, T)),
            **kwargs,
        )


@pytest.fixture
def rec():
    return Recorder()


def complete_change(runner):
    runner.membership_start_change(1, {"a", "b"})
    runner.receive("b", SyncMsg(1, initial_view("b"), frozendict({"b": 0})))
    runner.membership_view(V1)


def test_full_view_change_via_runner(rec):
    runner = rec.make_runner()
    complete_change(runner)
    assert runner.current_view == V1
    assert rec.views == [(V1, frozenset({"a"}))]
    assert frozenset({"a", "b"}) in rec.reliable


def test_auto_block_ok_answers_block(rec):
    runner = rec.make_runner()
    complete_change(runner)
    kinds = [type(e).__name__ for e in runner.trace]
    assert "BlockEvent" in kinds and "BlockOkEvent" in kinds


def test_app_send_multicasts_and_self_delivers(rec):
    runner = rec.make_runner()
    complete_change(runner)
    runner.app_send("hello")
    payloads = [m.payload for _t, m in rec.wire if isinstance(m, AppMsg)]
    assert payloads == ["hello"]
    assert ("a", "hello") in rec.delivered


def test_send_while_blocked_raises(rec):
    runner = rec.make_runner(auto_block_ok=False)
    runner.membership_start_change(1, {"a", "b"})
    runner.block_ok()
    assert runner.blocked
    with pytest.raises(ClientMisuseError):
        runner.app_send("nope")


def test_manual_block_callback(rec):
    blocked = []
    endpoint = GcsEndpoint("a")
    runner = EndpointRunner(
        endpoint,
        send_wire=lambda *_: None,
        set_reliable=lambda *_: None,
        on_block=lambda: blocked.append(True),
        auto_block_ok=False,
    )
    runner.membership_start_change(1, {"a", "b"})
    assert blocked == [True]
    assert not runner.blocked  # nobody acknowledged yet


def test_receive_routes_messages(rec):
    runner = rec.make_runner()
    complete_change(runner)
    runner.receive("b", ViewMsg(V1))
    runner.receive("b", AppMsg("from-b"))
    assert ("b", "from-b") in rec.delivered


def test_trace_records_events_in_order(rec):
    runner = rec.make_runner()
    complete_change(runner)
    runner.app_send("x")
    kinds = [type(e) for e in runner.trace]
    assert kinds.index(ViewEvent) < kinds.index(SendEvent)
    assert DeliverEvent in kinds


def test_clock_stamps_events(rec):
    times = iter(range(100))
    endpoint = GcsEndpoint("a")
    runner = EndpointRunner(
        endpoint,
        send_wire=lambda *_: None,
        set_reliable=lambda *_: None,
        clock=lambda: float(next(times)),
    )
    runner.membership_start_change(1, {"a"})
    stamps = [e.time for e in runner.trace]
    assert stamps == sorted(stamps)


def test_drain_reentrancy_guard(rec):
    runner = rec.make_runner()
    # calling drain inside a callback must not recurse
    runner._draining = True
    assert runner.drain() == 0
    runner._draining = False
