"""Differential testing of the steady-state fast path.

The fast lane (:mod:`repro.core.fastpath`) compiles the within-view
send/deliver loop to straight-line code; the general engine remains the
oracle.  These tests run the *same* seeded scenarios with the lane
enabled and disabled and require the resulting
:class:`~repro.checking.events.GcsTrace` objects to be identical:
event-for-event with every field equal - virtual timestamps included -
on the simulator, whose clock is deterministic, and event-for-event
after timestamp normalisation on the wall-clock runtimes (asyncio hub,
TCP sockets).  (Raw pickle bytes are *not* compared: the lane reuses
the same string object for ``proc`` and ``sender`` where the general
engine builds equal but distinct ones, which changes pickle memo
references without changing any observable value.)

The mid-stream scenarios force view changes while application traffic
is flowing, exercising the drain-back boundary: the lane must disengage
on the first membership event and the general engine must take over
without a single event reordered, duplicated, or lost.
"""

import random
from dataclasses import replace

import pytest

from repro.deploy import run_scenario
from repro.net import ConstantLatency, SimWorld, UniformLatency


def sim_trace(fastpath, build, make_latency):
    """Run ``build`` on a fresh SimWorld; return its trace events."""
    world = SimWorld(
        latency=make_latency(), membership="oracle", fastpath=fastpath
    )
    build(world)
    return world.trace.events


def assert_sim_differential(build, make_latency=lambda: ConstantLatency(1.0)):
    # Each run gets its own latency model: a seeded model is an RNG
    # stream, and sharing one instance would hand the second run the
    # first run's leftovers.
    fast = sim_trace(True, build, make_latency)
    slow = sim_trace(False, build, make_latency)
    assert len(fast) > 0
    # Dataclass equality covers every field, virtual timestamps included,
    # and requires the exact same event class.
    assert fast == slow


def test_sim_steady_state_identical():
    """Pure within-view traffic: every operation rides the lane."""

    def build(world):
        nodes = world.add_nodes([f"p{i}" for i in range(5)])
        world.start()
        world.run()
        for round_no in range(6):
            for node in nodes:
                node.send((node.pid, round_no))
            world.run()

    assert_sim_differential(build)


def test_sim_mid_stream_view_changes_identical():
    """Sends in flight while membership churns: drain-back exercised.

    Messages are deliberately left on the wire when the reconfiguration
    and the crash hit, so some end-points take membership inputs between
    fast-lane deliveries and must fall back mid-stream.
    """

    def build(world):
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run()
        for node in nodes:
            node.send("pre-" + node.pid)
        # Do NOT settle: the reconfiguration races the app traffic.
        world.oracle.reconfigure([["p0", "p1", "p2"]])
        world.run()
        for pid in ("p0", "p1", "p2"):
            world.node(pid).send("mid-" + pid)
        world.run_until(world.now() + 0.5)  # deliveries still in flight
        world.crash("p2")
        world.run()
        for pid in ("p0", "p1"):
            world.node(pid).send("post-" + pid)
        world.run()

    assert_sim_differential(build)


def test_sim_partition_heal_identical():
    def build(world):
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run()
        for node in nodes:
            node.send("before")
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        world.node("p0").send("island-a")
        world.node("p3").send("island-b")
        world.run()
        world.heal()
        world.run()
        for node in nodes:
            node.send("after")
        world.run()

    assert_sim_differential(build)


@pytest.mark.parametrize("seed", [7, 21, 42])
def test_sim_seeded_random_ops_identical(seed):
    """A seeded mix of sends, reconfigurations, crashes, and partial runs."""

    def build(world):
        rng = random.Random(seed)
        pids = [f"p{i}" for i in range(5)]
        nodes = world.add_nodes(pids)
        world.start()
        world.run()
        alive = set(pids)
        for step in range(30):
            op = rng.random()
            if op < 0.7:
                pid = rng.choice(sorted(alive))
                node = world.node(pid)
                if not node.runner.blocked:
                    node.send((pid, step))
            elif op < 0.8 and len(alive) > 2:
                pid = rng.choice(sorted(alive))
                alive.discard(pid)
                world.crash(pid)
            elif op < 0.9:
                world.oracle.reconfigure([sorted(alive)])
            if rng.random() < 0.5:
                world.run_until(world.now() + rng.choice([0.5, 1.0, 2.0]))
            else:
                world.run()
        world.run()

    assert_sim_differential(build)


def test_sim_jittered_latency_identical():
    """Seeded jitter: batching and the lane see out-of-phase arrivals."""

    def build(world):
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run()
        for round_no in range(4):
            for node in nodes:
                node.send(round_no)
            world.run()

    assert_sim_differential(build, make_latency=lambda: UniformLatency(0.5, 3.0, seed=9))


# ----------------------------------------------------------------------
# wall-clock runtimes: compare after timestamp normalisation
# ----------------------------------------------------------------------


def normalized(deployment):
    """The trace with wall-clock timestamps zeroed, per process.

    The runtimes interleave processes nondeterministically between
    quiescent points, so the cross-process order of one run is not a
    specification; the per-process event sequences are.
    """
    by_proc = {}
    for event in deployment.trace:
        by_proc.setdefault(event.proc, []).append(replace(event, time=0.0))
    return by_proc


async def scenario_steady_then_reconfigure(deployment):
    """Sequential steady-state traffic, then a mid-stream view change."""
    pids = ["p0", "p1", "p2"]
    await deployment.setup(pids)
    for round_no in range(3):
        for pid in pids:
            await deployment.send(pid, (pid, round_no))
        await deployment.settle()
    await deployment.reconfigure(["p0", "p1"])
    for pid in ("p0", "p1"):
        await deployment.send(pid, "after-" + pid)
    await deployment.settle()


@pytest.mark.parametrize("substrate", ["async", "tcp"])
def test_runtime_fast_on_off_identical(substrate):
    fast = run_scenario(substrate, scenario_steady_then_reconfigure, fastpath=True)
    slow = run_scenario(substrate, scenario_steady_then_reconfigure, fastpath=False)
    fast_events, slow_events = normalized(fast), normalized(slow)
    assert fast_events.keys() == slow_events.keys()
    for proc in fast_events:
        assert fast_events[proc] == slow_events[proc], f"divergence at {proc}"
    # Both runs must also pass the full property battery.
    fast.check()
    slow.check()
