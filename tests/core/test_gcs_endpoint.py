"""Unit tests for the full GCS end-point with Self Delivery (Figure 11)."""

import pytest

from repro._collections import frozendict
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import SyncMsg
from repro.ioa import Action
from repro.spec.client import BlockStatus
from repro.types import initial_view, make_view

V1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})


@pytest.fixture
def ep():
    return GcsEndpoint("a", strict=True)


def drain(ep, names=None):
    executed = []
    while True:
        batch = [a for a in ep.enabled_actions() if names is None or a.name in names]
        if not batch:
            return executed
        for action in batch:
            if ep.is_enabled(action):
                ep.apply(action)
                executed.append(action)


def start_change(p, cid, members):
    return Action("mbrshp.start_change", (p, cid, frozenset(members)))


class TestBlocking:
    def test_block_offered_after_start_change(self, ep):
        assert not any(a.name == "block" for a in ep.enabled_actions())
        ep.apply(start_change("a", 1, {"a", "b"}))
        assert any(a.name == "block" for a in ep.enabled_actions())

    def test_block_transitions(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        ep.apply(Action("block", ("a",)))
        assert ep.block_status is BlockStatus.REQUESTED
        assert not any(a.name == "block" for a in ep.enabled_actions())
        ep.apply(Action("block_ok", ("a",)))
        assert ep.block_status is BlockStatus.BLOCKED

    def test_sync_gated_on_block_ok(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable"})
        syncs = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert syncs == []  # not blocked yet
        ep.apply(Action("block", ("a",)))
        ep.apply(Action("block_ok", ("a",)))
        syncs = [
            a for a in ep.enabled_actions()
            if a.name == "co_rfifo.send" and isinstance(a.params[2], SyncMsg)
        ]
        assert len(syncs) == 1

    def test_view_unblocks(self, ep):
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable", "block"})
        ep.apply(Action("block_ok", ("a",)))
        drain(ep, {"co_rfifo.send"})
        ep.apply(Action("co_rfifo.deliver", ("b", "a",
                        SyncMsg(1, initial_view("b"), frozendict({"b": 0})))))
        ep.apply(Action("mbrshp.view", ("a", V1)))
        drain(ep)
        assert ep.current_view == V1
        assert ep.block_status is BlockStatus.UNBLOCKED


class TestSelfDelivery:
    def test_cut_commits_to_all_sent_messages(self, ep):
        ep.apply(Action("send", ("a", "m1")))
        ep.apply(Action("send", ("a", "m2")))
        drain(ep, {"co_rfifo.send"})  # wire-send (empty target set)
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable", "block"})
        ep.apply(Action("block_ok", ("a",)))
        drain(ep, {"co_rfifo.send"})
        assert ep.own_sync_msg().cut["a"] == 2

    def test_view_waits_for_self_deliveries(self, ep):
        ep.apply(Action("send", ("a", "m1")))
        ep.apply(start_change("a", 1, {"a", "b"}))
        drain(ep, {"co_rfifo.reliable", "block"})
        ep.apply(Action("block_ok", ("a",)))
        drain(ep, {"co_rfifo.send"})
        ep.apply(Action("co_rfifo.deliver", ("b", "a",
                        SyncMsg(1, initial_view("b"), frozendict({"b": 0})))))
        ep.apply(Action("mbrshp.view", ("a", V1)))
        # m1 not yet self-delivered: no view
        assert drain(ep, {"view"}) == []
        drain(ep, {"deliver"})
        assert drain(ep, {"view"})
        assert ep.current_view == V1

    def test_full_change_delivers_everything_sent(self, ep):
        for i in range(3):
            ep.apply(Action("send", ("a", f"m{i}")))
        ep.apply(start_change("a", 1, {"a", "b"}))
        executed = drain(ep)  # wire-sends + self-deliveries + block request
        ep.apply(Action("block_ok", ("a",)))
        executed += drain(ep)
        ep.apply(Action("co_rfifo.deliver", ("b", "a",
                        SyncMsg(1, initial_view("b"), frozendict({"b": 0})))))
        ep.apply(Action("mbrshp.view", ("a", V1)))
        executed += drain(ep)
        delivered = [a for a in executed if a.name == "deliver"]
        views = [a for a in executed if a.name == "view"]
        assert len(delivered) == 3  # every sent message self-delivered
        view_index = executed.index(views[0])
        assert all(executed.index(d) < view_index for d in delivered)
        assert ep.current_view == V1


class TestInheritanceChain:
    def test_gcs_is_a_vs_and_wv_endpoint(self, ep):
        from repro.core.vs_endpoint import VsRfifoTsEndpoint
        from repro.core.wv_endpoint import WvRfifoEndpoint

        assert isinstance(ep, VsRfifoTsEndpoint)
        assert isinstance(ep, WvRfifoEndpoint)

    def test_state_ownership_follows_figures(self, ep):
        from repro.core.gcs_endpoint import GcsEndpoint as G
        from repro.core.vs_endpoint import VsRfifoTsEndpoint as V
        from repro.core.wv_endpoint import WvRfifoEndpoint as W

        assert ep._owners["msgs"] is W
        assert ep._owners["sync_msg"] is V
        assert ep._owners["block_status"] is G
