"""Acknowledgement-based garbage collection (Section 5.1's remark).

Real implementations must discard messages proven delivered everywhere;
the ``ack_gc_interval`` option broadcasts cumulative acknowledgements and
truncates buffers at the all-members floor.
"""

import pytest

from repro._collections import MessageLog
from repro.checking import check_all_safety
from repro.core.gcs_endpoint import GcsEndpoint
from repro.net import ConstantLatency, SimWorld


class TestMessageLogTruncation:
    def test_truncate_keeps_logical_indices(self):
        log = MessageLog()
        for i in range(1, 6):
            log.append(f"m{i}")
        assert log.truncate_through(3) == 3
        assert log.truncated_through == 3
        assert log.get(3) is None
        assert log.get(4) == "m4"
        assert log.last_index() == 5
        assert log.longest_prefix() == 5  # logical, unchanged

    def test_truncate_only_within_prefix(self):
        log = MessageLog()
        log.append("m1")
        log.put(3, "m3")  # hole at 2
        assert log.truncate_through(3) == 1  # capped at the prefix (1)
        assert log.get(3) == "m3"

    def test_truncate_idempotent(self):
        log = MessageLog()
        log.append("m1")
        log.append("m2")
        log.truncate_through(2)
        assert log.truncate_through(2) == 0

    def test_put_below_floor_is_dropped(self):
        log = MessageLog()
        log.append("m1")
        log.truncate_through(1)
        log.put(1, "late duplicate")
        assert log.get(1) is None

    def test_append_after_truncation_continues_indices(self):
        log = MessageLog()
        log.append("m1")
        log.truncate_through(1)
        assert log.append("m2") == 2
        assert log.get(2) == "m2"

    def test_retained_counts_physical_entries(self):
        log = MessageLog()
        for i in range(4):
            log.append(i)
        log.truncate_through(2)
        assert log.retained() == 2

    def test_equality_includes_base(self):
        a, b = MessageLog(), MessageLog()
        a.append("x")
        b.append("x")
        a.truncate_through(1)
        assert a != b


class TestEndpointOption:
    def test_strict_mode_rejects_gc_options(self):
        with pytest.raises(ValueError):
            GcsEndpoint("a", strict=True, ack_gc_interval=5)
        with pytest.raises(ValueError):
            GcsEndpoint("a", strict=True, gc_views=True)

    def test_disabled_by_default(self):
        endpoint = GcsEndpoint("a")
        assert endpoint.ack_gc_interval is None
        assert not endpoint._ack_ready()


class TestEndToEnd:
    def run_world(self, ack_interval, waves=12):
        world = SimWorld(
            latency=ConstantLatency(1.0),
            membership="oracle",
            round_duration=1.0,
            ack_gc_interval=ack_interval,
        )
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run()
        for wave in range(waves):
            for node in nodes:
                node.send(f"{node.pid}-{wave}")
            world.run()
        return world, nodes

    def test_memory_bounded_with_gc(self):
        world, nodes = self.run_world(ack_interval=4)
        assert max(n.endpoint.buffered_messages() for n in nodes) <= 16

    def test_memory_grows_without_gc(self):
        world, nodes = self.run_world(ack_interval=None)
        assert min(n.endpoint.buffered_messages() for n in nodes) >= 4 * 12

    def test_all_messages_still_delivered(self):
        world, nodes = self.run_world(ack_interval=4)
        assert all(len(n.delivered) == 4 * 12 for n in nodes)
        check_all_safety(world.trace, list(world.nodes))

    def test_view_change_after_gc_is_safe(self):
        world, nodes = self.run_world(ack_interval=4)
        world.crash("p3")
        world.run()
        for node in nodes[:3]:
            node.send("after change")
        world.run()
        check_all_safety(world.trace, list(world.nodes))

    def test_ack_messages_on_the_wire(self):
        world, _nodes = self.run_world(ack_interval=4)
        assert world.network.totals().get("AckMsg", 0) > 0

    def test_no_acks_when_disabled(self):
        world, _nodes = self.run_world(ack_interval=None)
        assert world.network.totals().get("AckMsg", 0) == 0

    def test_stale_view_acks_ignored(self):
        world, nodes = self.run_world(ack_interval=4, waves=2)
        from repro._collections import frozendict
        from repro.core.messages import AckMsg
        from repro.types import ViewId

        ep = nodes[0].endpoint
        before = dict(ep.acked)
        stale = AckMsg(ViewId(999), frozendict({"p1": 50}))
        nodes[0].runner.receive("p1", stale)
        assert dict(ep.acked) == before
