"""Unit tests for the collection primitives (frozendict, MessageLog)."""

import pytest

from repro._collections import MessageLog, frozendict


class TestFrozendict:
    def test_lookup(self):
        d = frozendict({"a": 1, "b": 2})
        assert d["a"] == 1
        assert d.get("b") == 2
        assert d.get("missing") is None

    def test_len_and_iter(self):
        d = frozendict({"a": 1, "b": 2})
        assert len(d) == 2
        assert sorted(d) == ["a", "b"]

    def test_value_equality(self):
        assert frozendict({"x": 1}) == frozendict({"x": 1})
        assert frozendict({"x": 1}) != frozendict({"x": 2})

    def test_equal_to_plain_mapping(self):
        assert frozendict({"x": 1}) == {"x": 1}

    def test_hash_consistent_with_equality(self):
        assert hash(frozendict({"a": 1, "b": 2})) == hash(frozendict({"b": 2, "a": 1}))

    def test_usable_as_dict_key(self):
        table = {frozendict({"a": 1}): "yes"}
        assert table[frozendict({"a": 1})] == "yes"

    def test_set_returns_new_copy(self):
        d = frozendict({"a": 1})
        d2 = d.set("b", 2)
        assert "b" not in d
        assert d2["b"] == 2

    def test_discard(self):
        d = frozendict({"a": 1, "b": 2})
        assert "a" not in d.discard("a")
        assert d.discard("zz") == d

    def test_no_item_assignment(self):
        d = frozendict({"a": 1})
        with pytest.raises(TypeError):
            d["a"] = 2  # type: ignore[index]

    def test_repr_round_trippable_shape(self):
        assert "frozendict" in repr(frozendict({"a": 1}))


class TestMessageLog:
    def test_empty(self):
        log = MessageLog()
        assert len(log) == 0
        assert not log
        assert log.longest_prefix() == 0
        assert log.last_index() == 0
        assert log.get(1) is None
        assert not log.has(1)

    def test_append_is_one_indexed(self):
        log = MessageLog()
        assert log.append("m1") == 1
        assert log.append("m2") == 2
        assert log.get(1) == "m1"
        assert log.get(2) == "m2"

    def test_longest_prefix_contiguous(self):
        log = MessageLog()
        log.append("a")
        log.append("b")
        assert log.longest_prefix() == 2

    def test_put_creates_holes(self):
        log = MessageLog()
        log.put(3, "m3")
        assert log.last_index() == 3
        assert log.longest_prefix() == 0
        assert log.has(3)
        assert not log.has(1)

    def test_prefix_advances_when_holes_fill(self):
        log = MessageLog()
        log.put(3, "m3")
        log.put(1, "m1")
        assert log.longest_prefix() == 1
        log.put(2, "m2")
        assert log.longest_prefix() == 3

    def test_put_keeps_existing_message(self):
        # Forwarded duplicates are identical (Invariant 6.6); first write wins.
        log = MessageLog()
        log.put(1, "original")
        log.put(1, "duplicate")
        assert log.get(1) == "original"

    def test_put_rejects_none(self):
        with pytest.raises(ValueError):
            MessageLog().put(1, None)

    def test_put_rejects_non_positive_index(self):
        with pytest.raises(IndexError):
            MessageLog().put(0, "m")

    def test_get_out_of_range(self):
        log = MessageLog()
        log.append("m")
        assert log.get(0) is None
        assert log.get(2) is None

    def test_prefix_items(self):
        log = MessageLog()
        log.append("a")
        log.put(3, "c")
        assert log.prefix_items() == ["a"]

    def test_equality(self):
        a, b = MessageLog(), MessageLog()
        a.append("x")
        b.append("x")
        assert a == b
        b.append("y")
        assert a != b

    def test_mixed_append_and_put(self):
        log = MessageLog()
        log.append("m1")
        log.put(4, "m4")
        log.append("m5")  # append goes after the highest written index
        assert log.get(5) == "m5"
        assert log.longest_prefix() == 1
