"""Unit tests for the core value types (Section 3)."""

import pytest

from repro._collections import frozendict
from repro.types import (
    CID_ZERO,
    VID_ZERO,
    View,
    ViewId,
    cut_max,
    initial_view,
    make_cut,
    make_view,
)


class TestViewId:
    def test_total_order_by_counter(self):
        assert ViewId(1) < ViewId(2)
        assert ViewId(2) > ViewId(1)

    def test_origin_breaks_ties(self):
        assert ViewId(1, "a") < ViewId(1, "b")
        assert ViewId(1, "a") != ViewId(1, "b")

    def test_vid_zero_is_least(self):
        assert VID_ZERO <= ViewId(0)
        assert VID_ZERO < ViewId(1, "anything")

    def test_next_is_strictly_greater(self):
        vid = ViewId(3, "x")
        assert vid.next() > vid
        assert vid.next("y").origin == "y"

    def test_hashable(self):
        assert len({ViewId(1), ViewId(1), ViewId(2)}) == 2

    def test_repr(self):
        assert repr(ViewId(4)) == "ViewId(4)"
        assert "srv" in repr(ViewId(4, "srv"))


class TestView:
    def test_members_coerced_to_frozenset(self):
        view = View(ViewId(1), {"a", "b"}, frozendict({"a": 1, "b": 1}))
        assert isinstance(view.members, frozenset)

    def test_equality_is_triple_equality(self):
        # "Two views are considered the same if they consist of identical
        # triples" - including the startId map.
        v1 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        v2 = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        v3 = make_view(1, ["a", "b"], {"a": 1, "b": 2})
        assert v1 == v2
        assert v1 != v3

    def test_views_are_hashable_dict_keys(self):
        v1 = make_view(1, ["a"], {"a": 1})
        v2 = make_view(1, ["a"], {"a": 1})
        assert {v1: "x"}[v2] == "x"

    def test_start_id_lookup(self):
        view = make_view(1, ["a", "b"], {"a": 5, "b": 7})
        assert view.start_id("a") == 5
        assert view.start_id("b") == 7

    def test_contains(self):
        view = make_view(1, ["a"], {"a": 1})
        assert "a" in view
        assert "b" not in view

    def test_initial_view_shape(self):
        view = initial_view("p")
        assert view.vid == VID_ZERO
        assert view.members == frozenset({"p"})
        assert view.start_id("p") == CID_ZERO

    def test_make_view_defaults_start_ids(self):
        view = make_view(1, ["a", "b"])
        assert view.start_id("a") == CID_ZERO

    def test_make_view_rejects_missing_start_ids(self):
        with pytest.raises(ValueError):
            make_view(1, ["a", "b"], {"a": 1})


class TestCuts:
    def test_make_cut(self):
        cut = make_cut({"a": 3, "b": 0})
        assert cut["a"] == 3

    def test_cut_max_pointwise(self):
        c1 = make_cut({"a": 1, "b": 5})
        c2 = make_cut({"a": 4, "b": 2})
        merged = cut_max([c1, c2], ["a", "b"])
        assert merged == {"a": 4, "b": 5}

    def test_cut_max_missing_bindings_count_as_zero(self):
        merged = cut_max([make_cut({"a": 2})], ["a", "b"])
        assert merged == {"a": 2, "b": 0}

    def test_cut_max_empty(self):
        assert cut_max([], ["a"]) == {"a": 0}
