"""Tests for the causal-order layer (vector clocks over the GCS)."""

import pytest

from repro.checking import check_all_safety
from repro.net import ConstantLatency, SimWorld, UniformLatency
from repro.order import CausalOrderNode


class Chatty:
    """An app that replies to specific payloads, creating causal chains."""

    def __init__(self, node):
        self.node = CausalOrderNode(node, on_deliver=self.on_deliver)
        self.pid = node.pid
        self.replies = {}

    def on_deliver(self, sender, payload):
        reply = self.replies.get(payload)
        if reply is not None:
            self.node.broadcast(reply)


def make_group(n=4, latency=None):
    world = SimWorld(
        latency=latency or ConstantLatency(1.0),
        membership="oracle",
        round_duration=2.0,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(n)])
    causal = [CausalOrderNode(node) for node in nodes]
    world.start()
    world.run()
    return world, causal


def position(node, payload):
    payloads = [p for _s, p in node.delivered]
    return payloads.index(payload)


class TestCausality:
    def test_reply_never_precedes_cause(self):
        # p1's reply is sent after delivering p0's question; every member
        # must deliver question before reply, even with big jitter.
        world = SimWorld(latency=UniformLatency(0.2, 4.0, seed=3),
                         membership="oracle", round_duration=2.0)
        nodes = world.add_nodes(["p0", "p1", "p2"])
        apps = [Chatty(node) for node in nodes]
        apps[1].replies["question"] = "answer"
        world.start()
        world.run()
        apps[0].node.broadcast("question")
        world.run()
        for app in apps:
            assert position(app.node, "question") < position(app.node, "answer")
        check_all_safety(world.trace, list(world.nodes))

    def test_transitive_chain(self):
        world = SimWorld(latency=UniformLatency(0.2, 4.0, seed=9),
                         membership="oracle", round_duration=2.0)
        nodes = world.add_nodes(["p0", "p1", "p2", "p3"])
        apps = [Chatty(node) for node in nodes]
        apps[1].replies["a"] = "b"
        apps[2].replies["b"] = "c"
        world.start()
        world.run()
        apps[0].node.broadcast("a")
        world.run()
        for app in apps:
            assert position(app.node, "a") < position(app.node, "b") < position(app.node, "c")

    def test_concurrent_messages_all_delivered(self):
        world, causal = make_group(latency=UniformLatency(0.3, 2.0, seed=4))
        for node in causal:
            node.broadcast("hi from " + node.pid)
        world.run()
        for node in causal:
            assert len(node.delivered) == len(causal)

    def test_fifo_preserved_per_sender(self):
        world, causal = make_group()
        for i in range(5):
            causal[1].broadcast(i)
        world.run()
        for node in causal:
            from_p1 = [p for s, p in node.delivered if s == "p1"]
            assert from_p1 == list(range(5))


class TestViewChanges:
    def test_vectors_reset_safely_across_views(self):
        world, causal = make_group()
        causal[0].broadcast("old view msg")
        world.run()
        world.crash("p3")
        world.run()
        causal[0].broadcast("new view msg")
        world.run()
        for node in causal[:3]:
            payloads = [p for _s, p in node.delivered]
            assert payloads.index("old view msg") < payloads.index("new view msg")

    def test_blocked_broadcast_parked_and_resent(self):
        world, causal = make_group(n=3)
        world.oracle.reconfigure([["p0", "p1", "p2"]])
        world.run_until(world.now() + 0.5)
        for node in causal:
            node.broadcast("mid-change " + node.pid)
        world.run()
        for node in causal:
            got = {p for _s, p in node.delivered}
            assert {"mid-change p0", "mid-change p1", "mid-change p2"} <= got
