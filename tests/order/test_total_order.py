"""Tests for the total-order layer (sequencer over the GCS)."""

import pytest

from repro.checking import check_all_safety
from repro.net import ConstantLatency, SimWorld, UniformLatency
from repro.order import TotalOrderNode


def make_group(n=4, latency=None, **world_kwargs):
    world = SimWorld(
        latency=latency or ConstantLatency(1.0),
        membership="oracle",
        round_duration=2.0,
        **world_kwargs,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(n)])
    ordered = [TotalOrderNode(node) for node in nodes]
    world.start()
    world.run()
    return world, ordered


def orders(ordered):
    return [node.total_order() for node in ordered]


class TestAgreement:
    def test_single_sender_order_matches_send_order(self):
        world, ordered = make_group()
        for i in range(5):
            ordered[1].broadcast(i)
        world.run()
        for node in ordered:
            assert node.total_order() == [("p1", i) for i in range(5)]

    def test_concurrent_senders_agree_on_one_order(self):
        world, ordered = make_group(latency=UniformLatency(0.2, 2.0, seed=5))
        for i in range(4):
            for node in ordered:
                node.broadcast(f"{node.pid}-{i}")
        world.run()
        sequences = orders(ordered)
        assert all(seq == sequences[0] for seq in sequences)
        assert len(sequences[0]) == 4 * len(ordered)

    def test_total_order_extends_fifo_order(self):
        world, ordered = make_group(latency=UniformLatency(0.2, 3.0, seed=8))
        for i in range(6):
            ordered[2].broadcast(i)
            ordered[3].broadcast(i * 10)
        world.run()
        sequence = ordered[0].total_order()
        per_sender = {}
        for sender, payload in sequence:
            per_sender.setdefault(sender, []).append(payload)
        assert per_sender["p2"] == list(range(6))
        assert per_sender["p3"] == [i * 10 for i in range(6)]


class TestViewChanges:
    def test_order_consistent_across_member_leave(self):
        world, ordered = make_group()
        for node in ordered:
            node.broadcast("pre-" + node.pid)
        world.run()
        world.crash("p3")
        world.run()
        survivors = ordered[:3]
        for node in survivors:
            node.broadcast("post-" + node.pid)
        world.run()
        sequences = [node.total_order() for node in survivors]
        assert all(seq == sequences[0] for seq in sequences)
        check_all_safety(world.trace, list(world.nodes))

    def test_sequencer_handover_on_sequencer_crash(self):
        world, ordered = make_group()
        assert ordered[1].sequencer == "p0"
        world.crash("p0")
        world.run()
        survivors = ordered[1:]
        assert all(node.sequencer == "p1" for node in survivors)
        for node in survivors:
            node.broadcast("new era " + node.pid)
        world.run()
        sequences = [node.total_order() for node in survivors]
        assert all(seq == sequences[0] for seq in sequences)
        assert len(sequences[0]) >= 3

    def test_leftover_data_reordered_after_view_change(self):
        # data that raced with the view change must still come out in one
        # agreed order at the survivors
        world, ordered = make_group(latency=UniformLatency(0.3, 2.5, seed=13))
        for i in range(3):
            ordered[2].broadcast(f"race-{i}")
        world.run_until(world.now() + 0.5)
        world.crash("p3")
        world.run()
        sequences = [node.total_order() for node in ordered[:3]]
        assert all(seq == sequences[0] for seq in sequences)
        assert [p for _s, p in sequences[0] if str(p).startswith("race")] == [
            "race-0", "race-1", "race-2",
        ]

    def test_partition_sides_order_independently_then_merge(self):
        world, ordered = make_group()
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        ordered[0].broadcast("left")
        ordered[2].broadcast("right")
        world.run()
        assert [p for _s, p in ordered[0].total_order()][-1] == "left"
        assert [p for _s, p in ordered[2].total_order()][-1] == "right"
        world.heal()
        world.run()
        for node in ordered:
            node.broadcast("merged-" + node.pid)
        world.run()
        tails = [node.total_order()[-4:] for node in ordered]
        assert all(tail == tails[0] for tail in tails)


class TestBlockedSends:
    def test_broadcast_during_view_change_is_parked_and_resent(self):
        world, ordered = make_group(n=3)
        # trigger a change; mid-round the app is blocked at some point
        world.oracle.reconfigure([["p0", "p1", "p2"]])
        world.run_until(world.now() + 0.5)
        for node in ordered:
            node.broadcast("parked-" + node.pid)
        world.run()
        sequences = [node.total_order() for node in ordered]
        assert all(seq == sequences[0] for seq in sequences)
        delivered_payloads = {p for _s, p in sequences[0]}
        assert {"parked-p0", "parked-p1", "parked-p2"} <= delivered_payloads
