"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_demo_runs_and_verifies():
    completed = run_cli("demo")
    assert completed.returncode == 0
    assert "all safety properties verified" in completed.stdout
    assert "transitional set" in completed.stdout


def test_simulate_defaults():
    assert main(["simulate", "--nodes", "4"]) == 0


def test_simulate_unknown_algorithm():
    assert main(["simulate", "--algorithm", "quantum"]) == 2


def test_simulate_wan_flag():
    assert main(["simulate", "--nodes", "4", "--wan", "--seed", "3"]) == 0


def test_version_flag():
    completed = run_cli("--version")
    assert completed.returncode == 0
    assert "repro" in completed.stdout


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_command_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "automata" in out


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    assert "R2.parent-write" in capsys.readouterr().out


def test_experiments_command(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for marker in ("E1/E2", "E4", "E5", "E10", "E11"):
        assert marker in out
