"""Unit tests for the CO_RFIFO specification automaton (Figure 3)."""

import pytest

from repro.ioa import Action
from repro.spec.co_rfifo import CoRfifoSpec
from repro.types import make_view


@pytest.fixture
def net():
    return CoRfifoSpec(["a", "b", "c"])


def send(p, targets, m):
    return Action("co_rfifo.send", (p, frozenset(targets), m))


def deliver(p, q, m):
    return Action("co_rfifo.deliver", (p, q, m))


def lose(p, q):
    return Action("co_rfifo.lose", (p, q))


class TestSendDeliver:
    def test_send_appends_to_each_target_channel(self, net):
        net.apply(send("a", {"b", "c"}, "m1"))
        assert list(net.channel[("a", "b")]) == ["m1"]
        assert list(net.channel[("a", "c")]) == ["m1"]
        assert list(net.channel[("a", "a")]) == []

    def test_deliver_requires_head_of_channel(self, net):
        net.apply(send("a", {"b"}, "m1"))
        net.apply(send("a", {"b"}, "m2"))
        assert not net.is_enabled(deliver("a", "b", "m2"))
        net.apply(deliver("a", "b", "m1"))
        assert net.is_enabled(deliver("a", "b", "m2"))

    def test_deliver_dequeues(self, net):
        net.apply(send("a", {"b"}, "m1"))
        net.apply(deliver("a", "b", "m1"))
        assert not net.channel[("a", "b")]

    def test_fifo_order_preserved(self, net):
        for i in range(5):
            net.apply(send("a", {"b"}, f"m{i}"))
        for i in range(5):
            head = net.channel[("a", "b")][0]
            assert head == f"m{i}"
            net.apply(deliver("a", "b", head))

    def test_deliver_candidates_enumerate_heads(self, net):
        net.apply(send("a", {"b", "c"}, "m1"))
        candidates = set(net.candidates("co_rfifo.deliver"))
        assert candidates == {("a", "b", "m1"), ("a", "c", "m1")}


class TestReliabilityAndLoss:
    def test_lose_disabled_for_reliable_destination(self, net):
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a", "b"}))))
        net.apply(send("a", {"b"}, "m1"))
        assert not net.is_enabled(lose("a", "b"))

    def test_lose_enabled_for_unreliable_destination(self, net):
        net.apply(send("a", {"b"}, "m1"))  # default reliable set is {a}
        assert net.is_enabled(lose("a", "b"))

    def test_lose_drops_the_last_message(self, net):
        net.apply(send("a", {"b"}, "m1"))
        net.apply(send("a", {"b"}, "m2"))
        net.apply(lose("a", "b"))
        assert list(net.channel[("a", "b")]) == ["m1"]

    def test_reliable_replaces_set(self, net):
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a", "b"}))))
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a"}))))
        assert net.reliable_set["a"] == {"a"}

    def test_live_set_updated(self, net):
        net.apply(Action("co_rfifo.live", ("a", frozenset({"a", "c"}))))
        assert net.live_set["a"] == {"a", "c"}


class TestMembershipLinkage:
    def test_linked_start_change_updates_live_set(self):
        net = CoRfifoSpec(["a", "b"], link_membership=True)
        net.apply(Action("mbrshp.start_change", ("a", 1, frozenset({"a", "b"}))))
        assert net.live_set["a"] == {"a", "b"}

    def test_linked_view_updates_live_set(self):
        net = CoRfifoSpec(["a", "b"], link_membership=True)
        v = make_view(1, ["a"], {"a": 1})
        net.apply(Action("mbrshp.view", ("a", v)))
        assert net.live_set["a"] == {"a"}

    def test_unlinked_spec_rejects_membership_inputs(self, net):
        assert "mbrshp.view" not in net.signature


class TestCrash:
    def test_crash_clears_reliable_and_live(self, net):
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a", "b"}))))
        net.apply(Action("crash", ("a",)))
        assert net.reliable_set["a"] == frozenset()
        assert net.live_set["a"] == frozenset()
        # all in-transit suffixes from a become losable
        net.apply(send("a", {"b"}, "m"))
        assert net.is_enabled(lose("a", "b"))


class TestTasks:
    def test_live_deliveries_form_individual_tasks(self, net):
        net.apply(Action("co_rfifo.live", ("a", frozenset({"a", "b"}))))
        net.apply(send("a", {"b"}, "m1"))
        tasks = net.tasks()
        assert tasks["deliver[a][b]"](Action("co_rfifo.deliver", ("a", "b", "m1")))
        assert not tasks["deliver[a][c]"](Action("co_rfifo.deliver", ("a", "b", "m1")))

    def test_dummy_task_covers_losses_and_dead_deliveries(self, net):
        tasks = net.tasks()
        assert tasks["dummy"](Action("co_rfifo.lose", ("a", "b")))
        # b is not in a's live set by default
        assert tasks["dummy"](Action("co_rfifo.deliver", ("a", "b", "m")))
