"""Unit tests for the TRANS_SET specification automaton (Figure 6)."""

import pytest

from repro.ioa import Action
from repro.spec.trans_set import TransSetSpec
from repro.types import initial_view, make_view


def declare(p, v):
    return Action("set_prev_view", (p, v))


def view(p, v, T):
    return Action("view", (p, v, frozenset(T)))


@pytest.fixture
def spec():
    return TransSetSpec(["a", "b", "c"])


def test_declare_requires_membership(spec):
    v = make_view(1, ["a", "b"])
    assert not spec.is_enabled(declare("c", v))
    assert spec.is_enabled(declare("a", v))


def test_declare_is_write_once(spec):
    v = make_view(1, ["a", "b"])
    spec.apply(declare("a", v))
    assert not spec.is_enabled(declare("a", v))


def test_view_waits_for_all_intersection_declarations(spec):
    v1 = make_view(1, ["a", "b", "c"])
    for p in "abc":
        spec.apply(declare(p, v1))
        spec.apply(view(p, v1, {p}))  # from disjoint singleton views: T={p}
    v2 = make_view(2, ["a", "b"])
    spec.apply(declare("a", v2))
    assert spec.expected_transitional_set("a", v2) is None  # b undeclared
    spec.apply(declare("b", v2))
    assert spec.expected_transitional_set("a", v2) == {"a", "b"}


def test_transitional_set_from_singletons_is_self(spec):
    v = make_view(1, ["a", "b"])
    spec.apply(declare("a", v))
    spec.apply(declare("b", v))
    # a and b come from different (singleton) views: each sees only itself
    assert spec.expected_transitional_set("a", v) == {"a"}
    spec.apply(view("a", v, {"a"}))
    assert spec.current_view["a"] == v


def test_view_rejects_wrong_transitional_set(spec):
    v = make_view(1, ["a", "b"])
    spec.apply(declare("a", v))
    spec.apply(declare("b", v))
    assert not spec.is_enabled(view("a", v, {"a", "b"}))  # b came from elsewhere


def test_movers_together_appear_in_each_others_sets(spec):
    v1 = make_view(1, ["a", "b"])
    spec.apply(declare("a", v1)); spec.apply(declare("b", v1))
    spec.apply(view("a", v1, {"a"})); spec.apply(view("b", v1, {"b"}))
    v2 = make_view(2, ["a", "b"])
    spec.apply(declare("a", v2)); spec.apply(declare("b", v2))
    # both declared from v1: T = {a, b} for both
    assert spec.expected_transitional_set("a", v2) == {"a", "b"}
    spec.apply(view("a", v2, {"a", "b"}))
    assert spec.expected_transitional_set("b", v2) == {"a", "b"}


def test_declaration_pins_previous_view(spec):
    v1 = make_view(1, ["a", "b"])
    v2 = make_view(2, ["a", "b"])
    spec.apply(declare("a", v2))  # a declares for v2 while still initial
    spec.apply(declare("a", v1)); spec.apply(declare("b", v1))
    spec.apply(view("a", v1, {"a"}))  # a moves to v1 first
    spec.apply(declare("b", v2))
    # a's declaration for v2 was made from its initial view, not v1:
    assert spec.prev_view[("a", v2)] == initial_view("a")
    assert spec.expected_transitional_set("a", v2) is None  # prev != current
