"""Unit tests for WV_RFIFO / VS_RFIFO / SELF / FullSafety specs
(Figures 4, 5, 7) and their inheritance relationships."""

import pytest

from repro._collections import frozendict
from repro.ioa import Action
from repro.spec.self_delivery import SelfDeliverySpec
from repro.spec.vs_rfifo import FullSafetySpec, VsRfifoSpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import initial_view, make_view


def send(p, m):
    return Action("send", (p, m))


def deliver(p, q, m):
    return Action("deliver", (p, q, m))


def view(p, v):
    return Action("view", (p, v, None))


def set_cut(v, v2, c):
    return Action("set_cut", (v, v2, frozendict(c)))


@pytest.fixture
def wv():
    return WvRfifoSpec(["a", "b"])


class TestWvRfifoSpec:
    def test_send_appends_to_current_view_queue(self, wv):
        wv.apply(send("a", "m1"))
        assert wv.msgs["a"][initial_view("a")] == ["m1"]

    def test_deliver_in_fifo_order(self, wv):
        v = make_view(1, ["a", "b"])
        wv.apply(view("a", v))
        wv.apply(view("b", v))
        wv.apply(send("a", "m1"))
        wv.apply(send("a", "m2"))
        assert not wv.is_enabled(deliver("b", "a", "m2"))
        wv.apply(deliver("b", "a", "m1"))
        wv.apply(deliver("b", "a", "m2"))
        assert wv.last_dlvrd[("a", "b")] == 2

    def test_delivery_only_from_current_view_queue(self, wv):
        wv.apply(send("a", "old"))  # sent in a's initial view
        v = make_view(1, ["a", "b"])
        wv.apply(view("b", v))
        # b's current view is v; a's message lives in a's initial view
        assert not wv.is_enabled(deliver("b", "a", "old"))

    def test_view_requires_self_inclusion(self, wv):
        v = make_view(1, ["b"], {"b": 1})
        assert not wv.is_enabled(view("a", v))

    def test_view_requires_monotonic_id(self, wv):
        v1 = make_view(2, ["a", "b"])
        wv.apply(view("a", v1))
        assert not wv.is_enabled(view("a", make_view(1, ["a", "b"])))
        assert not wv.is_enabled(view("a", v1))

    def test_view_resets_delivery_indices(self, wv):
        v1, v2 = make_view(1, ["a", "b"]), make_view(2, ["a", "b"])
        wv.apply(view("a", v1))
        wv.apply(view("b", v1))
        wv.apply(send("a", "m"))
        wv.apply(deliver("b", "a", "m"))
        wv.apply(view("b", v2))
        assert wv.last_dlvrd[("a", "b")] == 0

    def test_same_payload_twice_is_fine(self, wv):
        v = make_view(1, ["a", "b"])
        wv.apply(view("a", v)); wv.apply(view("b", v))
        wv.apply(send("a", "dup")); wv.apply(send("a", "dup"))
        wv.apply(deliver("b", "a", "dup"))
        wv.apply(deliver("b", "a", "dup"))
        assert wv.last_dlvrd[("a", "b")] == 2

    def test_deliver_candidates(self, wv):
        wv.apply(send("a", "m"))
        assert ("a", "a", "m") in set(wv.candidates("deliver"))


class TestVsRfifoSpec:
    def test_view_requires_a_cut(self):
        spec = VsRfifoSpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        assert not spec.is_enabled(view("a", v))
        spec.apply(set_cut(initial_view("a"), v, {"a": 0, "b": 0}))
        assert spec.is_enabled(view("a", v))

    def test_set_cut_is_write_once(self):
        spec = VsRfifoSpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        spec.apply(set_cut(initial_view("a"), v, {"a": 0, "b": 0}))
        assert not spec.is_enabled(set_cut(initial_view("a"), v, {"a": 1, "b": 0}))

    def test_view_requires_exact_cut_match(self):
        spec = VsRfifoSpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        spec.apply(send("a", "m1"))
        spec.apply(deliver("a", "a", "m1"))
        spec.apply(set_cut(initial_view("a"), v, {"a": 0, "b": 0}))
        # a delivered 1 from itself but the cut says 0
        assert not spec.is_enabled(view("a", v))

    def test_movers_from_same_view_share_the_cut(self):
        spec = VsRfifoSpec(["a", "b"])
        va = initial_view("a")
        v1 = make_view(1, ["a", "b"])
        v2 = make_view(2, ["a", "b"])
        spec.apply(set_cut(va, v1, {"a": 0, "b": 0}))
        spec.apply(view("a", v1))
        spec.apply(set_cut(initial_view("b"), v1, {"a": 0, "b": 0}))
        spec.apply(view("b", v1))
        spec.apply(send("a", "m"))
        spec.apply(deliver("a", "a", "m"))
        spec.apply(deliver("b", "a", "m"))
        spec.apply(set_cut(v1, v2, {"a": 1, "b": 0}))
        spec.apply(view("a", v2))
        spec.apply(view("b", v2))  # b matches the same cut
        assert spec.current_view["b"] == v2

    def test_delivering_beyond_cut_blocks_view(self):
        spec = VsRfifoSpec(["a", "b"])
        v1 = make_view(1, ["a", "b"])
        spec.apply(set_cut(initial_view("a"), v1, {"a": 1, "b": 0}))
        spec.apply(send("a", "m1"))
        spec.apply(send("a", "m2"))
        spec.apply(deliver("a", "a", "m1"))
        spec.apply(deliver("a", "a", "m2"))  # beyond the cut - allowed...
        assert not spec.is_enabled(view("a", v1))  # ...but then no view


class TestSelfDeliverySpec:
    def test_view_blocked_until_own_messages_delivered(self):
        spec = SelfDeliverySpec(["a", "b"])
        spec.apply(send("a", "mine"))
        v = make_view(1, ["a", "b"])
        assert not spec.is_enabled(view("a", v))
        spec.apply(deliver("a", "a", "mine"))
        assert spec.is_enabled(view("a", v))

    def test_other_processes_unaffected(self):
        spec = SelfDeliverySpec(["a", "b"])
        spec.apply(send("a", "mine"))
        v = make_view(1, ["a", "b"])
        assert spec.is_enabled(view("b", v))


class TestFullSafetySpec:
    def test_conjoins_vs_and_self_restrictions(self):
        spec = FullSafetySpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        spec.apply(send("a", "mine"))
        spec.apply(set_cut(initial_view("a"), v, {"a": 1, "b": 0}))
        # VS cut demands 1 delivered; Self Delivery demands own delivery too
        assert not spec.is_enabled(view("a", v))
        spec.apply(deliver("a", "a", "mine"))
        assert spec.is_enabled(view("a", v))

    def test_mro_runs_every_layer(self):
        # FullSafetySpec is VS + SELF over WV; all three view restrictions
        # must appear in the merged behaviour.
        spec = FullSafetySpec(["a"])
        v = make_view(1, ["a"])
        # no cut yet -> VS restriction blocks even though SELF is fine
        assert not spec.is_enabled(view("a", v))
