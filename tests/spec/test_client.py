"""Unit tests for the blocking-client specification (Figure 12)."""

import pytest

from repro.ioa import Action
from repro.spec.client import BlockStatus, ClientSpec, ScriptedClient
from repro.types import make_view


@pytest.fixture
def client():
    return ClientSpec("a")


def test_initially_unblocked(client):
    assert client.block_status is BlockStatus.UNBLOCKED
    assert client.is_enabled(Action("send", ("a", "m")))


def test_block_requests_then_acknowledge(client):
    client.apply(Action("block", ("a",)))
    assert client.block_status is BlockStatus.REQUESTED
    client.apply(Action("block_ok", ("a",)))
    assert client.block_status is BlockStatus.BLOCKED


def test_block_ok_only_when_requested(client):
    assert not client.is_enabled(Action("block_ok", ("a",)))


def test_send_allowed_while_requested_but_not_blocked(client):
    client.apply(Action("block", ("a",)))
    assert client.is_enabled(Action("send", ("a", "m")))
    client.apply(Action("block_ok", ("a",)))
    assert not client.is_enabled(Action("send", ("a", "m")))


def test_view_unblocks(client):
    client.apply(Action("block", ("a",)))
    client.apply(Action("block_ok", ("a",)))
    client.apply(Action("view", ("a", make_view(1, ["a"]), frozenset())))
    assert client.block_status is BlockStatus.UNBLOCKED


def test_accepts_only_own_subscript(client):
    assert client.accepts(Action("block", ("a",)))
    assert not client.accepts(Action("block", ("b",)))


class TestScriptedClient:
    def test_sends_script_in_order(self):
        client = ScriptedClient("a", script=["m1", "m2"])
        first = list(client.candidates("send"))
        assert first == [("a", "m1")]
        client.apply(Action("send", ("a", "m1")))
        assert list(client.candidates("send")) == [("a", "m2")]

    def test_no_candidates_while_blocked(self):
        client = ScriptedClient("a", script=["m1"])
        client.apply(Action("block", ("a",)))
        client.apply(Action("block_ok", ("a",)))
        assert list(client.candidates("send")) == []

    def test_block_ok_candidate_appears_when_requested(self):
        client = ScriptedClient("a")
        assert list(client.candidates("block_ok")) == []
        client.apply(Action("block", ("a",)))
        assert list(client.candidates("block_ok")) == [("a",)]

    def test_records_deliveries_and_views(self):
        client = ScriptedClient("a")
        client.apply(Action("deliver", ("a", "b", "payload")))
        view = make_view(1, ["a", "b"])
        client.apply(Action("view", ("a", view, frozenset({"a"}))))
        assert client.delivered == [("b", "payload")]
        assert client.views == [(view, frozenset({"a"}))]

    def test_queue_appends_payloads(self):
        client = ScriptedClient("a")
        client.queue("x", "y")
        assert list(client.script) == ["x", "y"]

    def test_parent_unblock_effect_runs_via_mro(self):
        client = ScriptedClient("a")
        client.apply(Action("block", ("a",)))
        client.apply(Action("block_ok", ("a",)))
        client.apply(Action("view", ("a", make_view(1, ["a"]), frozenset())))
        assert client.block_status is BlockStatus.UNBLOCKED
