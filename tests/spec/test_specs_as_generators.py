"""The specification automata run forward, not only as acceptors.

Safety specs are abstract machines that *generate* all legal behaviours;
these tests execute them under the random scheduler via their candidate
generators and check that everything generated is self-consistent.
"""

import pytest

from repro.ioa import Action, Composition, RandomScheduler
from repro.spec.co_rfifo import CoRfifoSpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import make_view


class TestCoRfifoGenerates:
    def test_random_execution_preserves_fifo(self):
        net = CoRfifoSpec(["a", "b"])
        delivered = []
        for i in range(10):
            net.apply(Action("co_rfifo.send", ("a", frozenset({"b"}), i)))
        system = Composition([net])
        scheduler = RandomScheduler(system, seed=5)
        scheduler.run(max_steps=1000)
        for event in system.trace.events("co_rfifo.deliver"):
            delivered.append(event.action.params[2])
        # with b unreliable, an arbitrary *suffix* may be lost: whatever
        # was delivered must be a prefix of the sends
        assert delivered == list(range(len(delivered)))

    def test_reliable_destination_loses_nothing(self):
        net = CoRfifoSpec(["a", "b"])
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a", "b"}))))
        for i in range(10):
            net.apply(Action("co_rfifo.send", ("a", frozenset({"b"}), i)))
        system = Composition([net])
        RandomScheduler(system, seed=7).run(max_steps=1000)
        delivered = [e.action.params[2] for e in system.trace.events("co_rfifo.deliver")]
        assert delivered == list(range(10))

    def test_lose_only_targets_unreliable(self):
        net = CoRfifoSpec(["a", "b", "c"])
        net.apply(Action("co_rfifo.reliable", ("a", frozenset({"a", "b"}))))
        net.apply(Action("co_rfifo.send", ("a", frozenset({"b", "c"}), "m")))
        system = Composition([net])
        RandomScheduler(system, seed=1).run(max_steps=100)
        for event in system.trace.events("co_rfifo.lose"):
            _p, q = event.action.params
            assert q == "c"


class TestWvRfifoGenerates:
    def test_spec_delivers_everything_eventually(self):
        spec = WvRfifoSpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        spec.apply(Action("view", ("a", v, None)))
        spec.apply(Action("view", ("b", v, None)))
        for i in range(5):
            spec.apply(Action("send", ("a", i)))
        system = Composition([spec])
        RandomScheduler(system, seed=3).run(max_steps=1000)
        assert spec.last_dlvrd[("a", "b")] == 5
        assert spec.last_dlvrd[("a", "a")] == 5

    def test_generated_deliveries_are_fifo(self):
        spec = WvRfifoSpec(["a", "b"])
        v = make_view(1, ["a", "b"])
        spec.apply(Action("view", ("a", v, None)))
        spec.apply(Action("view", ("b", v, None)))
        for i in range(5):
            spec.apply(Action("send", ("a", i)))
        system = Composition([spec])
        RandomScheduler(system, seed=9).run(max_steps=1000)
        at_b = [
            e.action.params[2]
            for e in system.trace.events("deliver")
            if e.action.params[0] == "b"
        ]
        assert at_b == sorted(at_b)
