"""Unit tests for the MBRSHP specification automaton (Figure 2)."""

import pytest

from repro.errors import ActionNotEnabled
from repro.ioa import Action
from repro.spec.mbrshp import MODE_CHANGE_STARTED, MODE_NORMAL, MbrshpSpec, MembershipDriver
from repro.types import make_view


@pytest.fixture
def spec():
    return MbrshpSpec(["a", "b", "c"])


def start_change(p, cid, members):
    return Action("mbrshp.start_change", (p, cid, frozenset(members)))


def view(p, v):
    return Action("mbrshp.view", (p, v))


class TestStartChange:
    def test_requires_increasing_cid(self, spec):
        spec.apply(start_change("a", 2, {"a", "b"}))
        assert not spec.is_enabled(start_change("a", 2, {"a", "b"}))
        assert not spec.is_enabled(start_change("a", 1, {"a", "b"}))
        assert spec.is_enabled(start_change("a", 3, {"a", "b"}))

    def test_requires_self_in_set(self, spec):
        assert not spec.is_enabled(start_change("a", 1, {"b", "c"}))

    def test_effect_sets_mode_and_record(self, spec):
        spec.apply(start_change("a", 1, {"a", "b"}))
        assert spec.mode["a"] == MODE_CHANGE_STARTED
        assert spec.start_change["a"].cid == 1
        assert spec.start_change["a"].members == {"a", "b"}


class TestView:
    def test_view_needs_preceding_start_change(self, spec):
        v = make_view(1, ["a"], {"a": 1})
        assert not spec.is_enabled(view("a", v))  # mode is normal

    def test_full_legal_sequence(self, spec):
        spec.apply(start_change("a", 1, {"a", "b"}))
        v = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        spec.apply(view("a", v))
        assert spec.mbrshp_view["a"] == v
        assert spec.mode["a"] == MODE_NORMAL

    def test_view_id_must_increase(self, spec):
        spec.apply(start_change("a", 1, {"a"}))
        spec.apply(view("a", make_view(5, ["a"], {"a": 1})))
        spec.apply(start_change("a", 2, {"a"}))
        assert not spec.is_enabled(view("a", make_view(5, ["a"], {"a": 2})))
        assert not spec.is_enabled(view("a", make_view(4, ["a"], {"a": 2})))

    def test_view_members_subset_of_start_change_set(self, spec):
        spec.apply(start_change("a", 1, {"a", "b"}))
        bad = make_view(1, ["a", "c"], {"a": 1, "c": 1})
        assert not spec.is_enabled(view("a", bad))

    def test_view_requires_self_inclusion(self, spec):
        spec.apply(start_change("a", 1, {"a", "b"}))
        not_mine = make_view(1, ["b"], {"b": 1})
        assert not spec.is_enabled(view("a", not_mine))

    def test_start_id_must_match_latest_cid(self, spec):
        spec.apply(start_change("a", 1, {"a"}))
        spec.apply(start_change("a", 9, {"a"}))
        stale = make_view(1, ["a"], {"a": 1})
        assert not spec.is_enabled(view("a", stale))
        fresh = make_view(1, ["a"], {"a": 9})
        assert spec.is_enabled(view("a", fresh))

    def test_no_second_view_without_new_start_change(self, spec):
        spec.apply(start_change("a", 1, {"a"}))
        spec.apply(view("a", make_view(1, ["a"], {"a": 1})))
        assert not spec.is_enabled(view("a", make_view(2, ["a"], {"a": 1})))

    def test_growing_membership_needs_new_start_change(self, spec):
        # The service may add processes while reconfiguring, as long as a
        # new start_change is sent (Section 3.1).
        spec.apply(start_change("a", 1, {"a", "b"}))
        spec.apply(start_change("a", 2, {"a", "b", "c"}))
        grown = make_view(1, ["a", "b", "c"], {"a": 2, "b": 1, "c": 1})
        assert spec.is_enabled(view("a", grown))


class TestCrashRecovery:
    def test_recover_resets_mode(self, spec):
        spec.apply(start_change("a", 1, {"a"}))
        spec.apply(Action("crash", ("a",)))
        spec.apply(Action("recover", ("a",)))
        assert spec.mode["a"] == MODE_NORMAL

    def test_watermarks_survive_crash(self, spec):
        spec.apply(start_change("a", 7, {"a"}))
        spec.apply(Action("crash", ("a",)))
        spec.apply(Action("recover", ("a",)))
        # the service never forgets: cid 7 is still the watermark
        assert not spec.is_enabled(start_change("a", 7, {"a"}))
        assert spec.is_enabled(start_change("a", 8, {"a"}))


class TestDriver:
    def test_form_view_actions_are_all_enabled_in_order(self, spec):
        driver = MembershipDriver(spec, seed=0)
        _view, actions = driver.form_view(["a", "b"])
        for action in actions:
            assert spec.is_enabled(action), action
            spec.apply(action)

    def test_formed_view_matches_start_ids(self, spec):
        driver = MembershipDriver(spec, seed=0)
        formed, actions = driver.form_view(["a", "b", "c"])
        for action in actions:
            spec.apply(action)
        for p in "abc":
            assert formed.start_id(p) == spec.last_cid(p)

    def test_partitioned_views_are_disjoint_and_legal(self, spec):
        driver = MembershipDriver(spec, seed=0)
        views, actions = driver.partitioned_views([["a"], ["b", "c"]])
        for action in actions:
            assert spec.is_enabled(action)
            spec.apply(action)
        assert views[0].members.isdisjoint(views[1].members)
        assert views[0].vid != views[1].vid

    def test_random_behaviour_is_legal(self, spec):
        driver = MembershipDriver(spec, seed=11)
        for action in driver.random_behaviour(20):
            assert spec.is_enabled(action), action
            spec.apply(action)

    def test_random_behaviour_reproducible(self):
        def gen(seed):
            spec = MbrshpSpec(["a", "b", "c"])
            return MembershipDriver(spec, seed=seed).random_behaviour(10)

        assert gen(5) == gen(5)
