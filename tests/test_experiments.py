"""Smoke tests for the experiments harness (small, fast configurations).

The benchmarks assert the paper-claim shapes at full size; these tests
pin the harness API and the shapes at miniature scale so refactors are
caught in the regular suite.
"""

import pytest

from repro.baselines import SequentialVsEndpoint, TwoRoundVsEndpoint
from repro.core import GcsEndpoint, MinCopiesStrategy, SimpleStrategy
from repro.experiments import (
    ALGORITHMS,
    format_table,
    measure_blocking_window,
    measure_compact_syncs,
    measure_crash_recovery,
    measure_forwarding,
    measure_obsolete_views,
    measure_ordering_overhead,
    matrix_agrees,
    measure_reconfiguration,
    measure_substrate,
    measure_throughput,
    measure_two_tier,
    reconfiguration_sweep,
    substrate_matrix,
)


class TestReconfig:
    def test_registry_covers_all_three_algorithms(self):
        assert set(ALGORITHMS.values()) == {
            GcsEndpoint, SequentialVsEndpoint, TwoRoundVsEndpoint,
        }

    def test_extra_rounds_shape(self):
        extras = {
            name: measure_reconfiguration(cls, group_size=4, algorithm_name=name).extra_rounds
            for name, cls in ALGORITHMS.items()
        }
        assert extras["gcs-1round (paper)"] == pytest.approx(0.0)
        assert extras["sequential-vs"] == pytest.approx(1.0)
        assert extras["two-round-vs"] == pytest.approx(2.0)

    def test_sweep_produces_one_row_per_algorithm_and_size(self):
        rows = reconfiguration_sweep([3, 4])
        assert len(rows) == 2 * len(ALGORITHMS)

    def test_safety_check_option(self):
        result = measure_reconfiguration(GcsEndpoint, group_size=3, check=True)
        assert result.membership_latency > 0


class TestForwarding:
    def test_copies_scale_with_holders_for_simple(self):
        result = measure_forwarding(SimpleStrategy(), group_size=5, backlog=2, holders=2)
        assert result.copies_per_missing == pytest.approx(2.0)

    def test_min_copies_always_one(self):
        result = measure_forwarding(MinCopiesStrategy(), group_size=5, backlog=2, holders=2)
        assert result.copies_per_missing == pytest.approx(1.0)

    def test_holders_bound_validated(self):
        with pytest.raises(ValueError):
            measure_forwarding(SimpleStrategy(), group_size=3, holders=2)


class TestObsolete:
    def test_modes(self):
        revise = measure_obsolete_views("revise", group_size=3, churn=2)
        serialize = measure_obsolete_views("serialize", group_size=3, churn=2)
        assert revise.app_views_per_process == pytest.approx(1.0)
        assert serialize.app_views_per_process == pytest.approx(2.0)
        assert revise.total_time < serialize.total_time

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_obsolete_views("yolo")


class TestOthers:
    def test_throughput_accounting(self):
        result = measure_throughput(group_size=3, messages_per_sender=2)
        assert result.total_deliveries == 3 * 3 * 2
        assert result.wire_messages == 3 * 2 * 2

    def test_blocking_window_ordering(self):
        ours = measure_blocking_window(GcsEndpoint, group_size=3).mean_blocking_window
        seq = measure_blocking_window(SequentialVsEndpoint, group_size=3).mean_blocking_window
        assert ours > seq  # the trade-off E7 documents

    def test_crash_recovery_flags(self):
        result = measure_crash_recovery(group_size=3)
        assert result.recovered_in_final_view
        assert result.post_recovery_delivery_ok
        assert result.monotone_view_ids

    def test_two_tier_saves_messages(self):
        flat = measure_two_tier(group_size=8, leaders=0)
        tiered = measure_two_tier(group_size=8, leaders=2)
        assert tiered.sync_messages < flat.sync_messages

    def test_compact_syncs_save_volume(self):
        plain = measure_compact_syncs(group_size=6, compact=False)
        compact = measure_compact_syncs(group_size=6, compact=True)
        assert compact.sync_volume < plain.sync_volume
        assert compact.sync_messages == plain.sync_messages

    def test_ordering_layers(self):
        fifo = measure_ordering_overhead("fifo", group_size=3, messages_per_sender=2)
        total = measure_ordering_overhead("total", group_size=3, messages_per_sender=2)
        assert total.mean_delivery_latency > fifo.mean_delivery_latency
        assert total.agreed_order

    def test_ordering_layer_validated(self):
        with pytest.raises(ValueError):
            measure_ordering_overhead("alphabetical")


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(["a", "bb"], [(1, 2.5), ("xx", 3)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "2.50" in table

    def test_empty_rows(self):
        table = format_table(["h"], [])
        assert "h" in table


class TestSubstrates:
    def test_single_substrate_counts(self):
        row = measure_substrate("sim", nodes=2, rounds=1)
        assert row.sends == 2
        assert row.deliveries == 4  # 2 sends x 2 members
        assert row.checked is True

    def test_matrix_covers_all_substrates_and_agrees(self):
        rows = substrate_matrix(nodes=2, rounds=1)
        assert [r.substrate for r in rows] == ["sim", "async", "tcp"]
        assert matrix_agrees(rows)

    def test_unknown_substrate_propagates(self):
        with pytest.raises(ValueError):
            measure_substrate("avian")


class TestServerChaos:
    def test_miniature_e20_sweep(self):
        from repro.experiments import measure_server_chaos

        result = measure_server_chaos("sim", episodes=6, servers=3)
        assert result.sweep.violations == 0
        assert sum(result.server_ops.values()) > 0
        assert result.ok

    def test_sweep_without_server_ops_is_not_ok(self):
        from repro.experiments import measure_server_chaos

        # servers=0 keeps the tier out of the schedules entirely: the
        # sweep may be green, but it proves nothing about the tier.
        result = measure_server_chaos("sim", episodes=2, servers=0)
        assert result.server_ops == {}
        assert not result.ok

    def test_miniature_e20_soak(self):
        from repro.experiments import measure_server_soak

        report = measure_server_soak(
            "sim", seed=5, duration=300.0, audit_every=25
        )
        assert report.ok, report.summary()
        assert report.elapsed >= 300.0
        assert report.max_resident <= report.resident_limit
