"""Baseline algorithms: same safety semantics, slower reconfiguration."""

import pytest

from repro.baselines import SequentialVsEndpoint, TwoRoundVsEndpoint
from repro.checking import check_all_safety, check_liveness
from repro.checking.events import MbrshpViewEvent, ViewEvent
from repro.core import GcsEndpoint
from repro.net import ConstantLatency, SimWorld


def run_world(endpoint_cls, n=4, round_duration=3.0):
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=round_duration,
        endpoint_cls=endpoint_cls,
        gc_views=False,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(n)])
    world.start()
    world.run()
    return world, nodes


def reconfigure_and_measure(world, nodes):
    for node in nodes:
        node.send(f"pre-{node.pid}")
    world.run()
    t0 = world.now()
    world.crash(nodes[-1].pid)
    world.run()
    view = world.oracle.views_formed[-1]
    mb = max(e.time for e in world.trace.of_type(MbrshpViewEvent) if e.view == view)
    gcs = max(e.time for e in world.trace.of_type(ViewEvent) if e.view == view)
    return view, mb - t0, gcs - mb


@pytest.mark.parametrize("endpoint_cls", [SequentialVsEndpoint, TwoRoundVsEndpoint])
def test_baseline_safety(endpoint_cls):
    world, nodes = run_world(endpoint_cls)
    view, _mb, _extra = reconfigure_and_measure(world, nodes)
    for node in nodes[:-1]:
        node.send(f"post-{node.pid}")
    world.run()
    check_all_safety(world.trace, list(world.nodes))
    check_liveness(world.trace, view)


def test_sequential_costs_one_extra_round():
    world, nodes = run_world(SequentialVsEndpoint)
    _view, _mb, extra = reconfigure_and_measure(world, nodes)
    assert extra == pytest.approx(1.0)  # one sync exchange after the view


def test_two_round_costs_two_extra_rounds():
    world, nodes = run_world(TwoRoundVsEndpoint)
    _view, _mb, extra = reconfigure_and_measure(world, nodes)
    assert extra == pytest.approx(2.0)  # propose-id + sync exchanges


def test_paper_algorithm_costs_zero_extra_rounds():
    world, nodes = run_world(GcsEndpoint)
    _view, _mb, extra = reconfigure_and_measure(world, nodes)
    assert extra == pytest.approx(0.0)


def test_two_round_sends_propose_id_messages():
    world, nodes = run_world(TwoRoundVsEndpoint)
    reconfigure_and_measure(world, nodes)
    assert world.message_counts().get("ProposeIdMsg", 0) > 0


def test_sequential_sends_no_propose_id():
    world, nodes = run_world(SequentialVsEndpoint)
    reconfigure_and_measure(world, nodes)
    assert world.message_counts().get("ProposeIdMsg", 0) == 0


def test_first_view_transitional_set_is_self():
    # Everyone moves into the first view from a distinct singleton view,
    # so each transitional set is the node itself (Property 4.1).
    world, nodes = run_world(SequentialVsEndpoint, n=3)
    view = world.oracle.views_formed[-1]
    for node in nodes:
        assert dict(node.views)[view] == {node.pid}


def test_transitional_sets_after_second_change():
    world, nodes = run_world(SequentialVsEndpoint, n=3)
    world.partition([["p0", "p1"], ["p2"]])
    world.run()
    v = world.oracle.views_formed[-2]  # the {p0, p1} view
    t_sets = {node.pid: dict(node.views).get(v) for node in nodes[:2]}
    assert t_sets == {"p0": {"p0", "p1"}, "p1": {"p0", "p1"}}
