"""End-to-end scenarios, on the simulator and across all substrates.

The classic scenarios run the full stack (membership, transports,
end-points) on the simulated deployment and check the complete safety
battery on the resulting trace.  ``TestSubstrateMatrix`` then takes the
substrate-free scenario scripts from :mod:`repro.deploy.scenarios` and
runs each one unchanged on all three backends - simulator, asyncio,
TCP sockets - holding every trace to the same checkers.
"""

import pytest

from repro.checking import check_all_safety, check_liveness
from repro.checking.events import MbrshpViewEvent, ViewEvent
from repro.core import MinCopiesStrategy, SimpleStrategy
from repro.deploy import (
    SUBSTRATES,
    run_scenario,
    scenario_churn,
    scenario_crash_mid_sync,
    scenario_reconfiguration,
    scenario_self_delivery,
    scenario_virtual_synchrony,
)
from repro.net import ConstantLatency, LognormalLatency, SimWorld, UniformLatency


def settled_world(n=5, **kwargs):
    defaults = dict(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    defaults.update(kwargs)
    world = SimWorld(**defaults)
    nodes = world.add_nodes([f"p{i}" for i in range(n)])
    world.start()
    world.run()
    return world, nodes


class TestSteadyState:
    def test_heavy_traffic_all_delivered(self):
        world, nodes = settled_world()
        for round_no in range(10):
            for node in nodes:
                node.send(f"{node.pid}-{round_no}")
        world.run()
        for node in nodes:
            assert len(node.delivered) == 50
        check_all_safety(world.trace, list(world.nodes))

    def test_fifo_per_sender_under_jitter(self):
        world, nodes = settled_world(latency=UniformLatency(0.1, 3.0, seed=7))
        for i in range(15):
            nodes[0].send(i)
        world.run()
        for node in nodes:
            from_p0 = [m for s, m in node.delivered if s == "p0"]
            assert from_p0 == list(range(15))
        check_all_safety(world.trace, list(world.nodes))

    def test_wan_latency_profile(self):
        world, nodes = settled_world(latency=LognormalLatency(1.0, 0.6, seed=9))
        for node in nodes:
            node.send("wan-" + node.pid)
        world.run()
        check_all_safety(world.trace, list(world.nodes))
        assert all(len(node.delivered) == 5 for node in nodes)


class TestPartitionsAndMerges:
    @pytest.mark.parametrize("forwarding", [SimpleStrategy(), MinCopiesStrategy()])
    def test_partition_heal_with_message_recovery(self, forwarding):
        world, nodes = settled_world(forwarding=forwarding)
        for node in nodes:
            node.send("pre-" + node.pid)
        world.run()
        world.partition([["p0", "p1", "p2"], ["p3", "p4"]])
        world.run()
        nodes[0].send("majority")
        nodes[3].send("minority")
        world.run()
        world.heal()
        world.run()
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))
        check_liveness(world.trace, final)

    def test_nested_partitions(self):
        world, nodes = settled_world()
        world.partition([["p0", "p1"], ["p2", "p3"], ["p4"]])
        world.run()
        views = {node.pid: node.current_view.members for node in nodes}
        assert views["p0"] == {"p0", "p1"}
        assert views["p2"] == {"p2", "p3"}
        assert views["p4"] == {"p4"}
        world.heal()
        world.run()
        check_all_safety(world.trace, list(world.nodes))

    def test_transitional_sets_across_merge(self):
        world, nodes = settled_world(n=4)
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        world.heal()
        world.run()
        merged = world.oracle.views_formed[-1]
        t = {node.pid: dict(node.views)[merged] for node in nodes}
        assert t["p0"] == {"p0", "p1"}
        assert t["p2"] == {"p2", "p3"}

    def test_messages_not_leaked_across_partition(self):
        world, nodes = settled_world(n=4)
        world.partition([["p0", "p1"], ["p2", "p3"]])
        world.run()
        nodes[0].send("secret")
        world.run()
        assert all("secret" not in [m for _s, m in node.delivered] for node in nodes[2:])
        check_all_safety(world.trace, list(world.nodes))


class TestCascadingChanges:
    def test_obsolete_views_never_delivered(self):
        # Two reconfigurations in quick succession: the superseded view
        # must not reach the application (the paper's Section 1 claim).
        world, nodes = settled_world(round_duration=4.0)
        world.partition([["p0", "p1", "p2", "p3"], ["p4"]])
        world.run_until(world.now() + 1.0)  # mid-membership-round
        world.heal()
        world.run()
        delivered_views = [e.view for e in world.trace.of_type(ViewEvent)]
        mb_views = {e.view for e in world.trace.of_type(MbrshpViewEvent)}
        final = world.oracle.views_formed[-1]
        # No endpoint delivered a GCS view for the cancelled change beyond
        # what the membership actually delivered:
        assert set(delivered_views) <= mb_views
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))

    def test_repeated_start_changes_before_view(self):
        world, nodes = settled_world(round_duration=3.0)
        world.oracle.reconfigure([[n.pid for n in nodes]], extra_changes=3)
        world.run()
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))

    def test_churn_sequence(self):
        world, nodes = settled_world()
        for victim in ("p0", "p1"):
            world.crash(victim)
            world.run()
        for victim in ("p0", "p1"):
            world.recover(victim)
            world.run()
        final = world.oracle.views_formed[-1]
        assert final.members == set(world.nodes)
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))


class TestServerMode:
    def test_two_tier_deployment_end_to_end(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
        nodes = world.add_nodes([f"p{i}" for i in range(6)])
        world.start()
        world.run(max_events=200_000)
        for node in nodes:
            node.send("tier-" + node.pid)
        world.run(max_events=200_000)
        assert all(len(node.delivered) == 6 for node in nodes)
        check_all_safety(world.trace, list(world.nodes))

    def test_server_partition_and_heal(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run(max_events=200_000)
        by_server = {}
        for node in nodes:
            by_server.setdefault(node.home_server, []).append(node.pid)
        groups = [[sid] + pids for sid, pids in by_server.items()]
        world.partition(groups)
        world.run(max_events=200_000)
        world.heal()
        world.run(max_events=200_000)
        vids = {str(n.current_view.vid) for n in nodes}
        assert len(vids) == 1
        check_all_safety(world.trace, list(world.nodes))


class TestCrashRecovery:
    def test_recovered_process_rejoins_under_original_identity(self):
        world, nodes = settled_world(n=3)
        nodes[0].send("pre")
        world.run()
        world.crash("p2")
        world.run()
        world.recover("p2")
        world.run()
        final = world.oracle.views_formed[-1]
        assert "p2" in final.members
        assert world.nodes["p2"].current_view == final
        check_all_safety(world.trace, list(world.nodes))

    def test_messages_resume_after_recovery(self):
        world, nodes = settled_world(n=3)
        world.crash("p2")
        world.run()
        world.recover("p2")
        world.run()
        nodes[0].send("welcome back")
        world.run()
        assert ("p0", "welcome back") in world.nodes["p2"].delivered

    def test_crash_during_view_change(self):
        world, nodes = settled_world(n=4, round_duration=4.0)
        world.partition([["p0", "p1", "p2", "p3"]])
        world.run_until(world.now() + 1.0)
        world.crash("p3")
        world.run()
        final = world.oracle.views_formed[-1]
        assert "p3" not in final.members
        assert all(world.nodes[p].current_view == final for p in final.members)
        check_all_safety(world.trace, list(world.nodes))


@pytest.mark.parametrize("substrate", SUBSTRATES)
class TestSubstrateMatrix:
    """The same scenario coroutine, three execution substrates.

    Every test runs a substrate-free script from
    :mod:`repro.deploy.scenarios` and audits the trace with
    ``deployment.check()`` - the full safety battery plus MBRSHP
    (Figure 2) conformance - so a view formed by the asyncio or TCP
    membership tier is held to exactly the standard of a sim-formed one.
    """

    def payloads(self, deployment, pid):
        return [m for _s, m in deployment.delivered(pid)]

    def test_self_delivery(self, substrate):
        deployment = run_scenario(substrate, scenario_self_delivery)
        deployment.check()
        expected = {f"{pid}-{r}" for pid in "abc" for r in range(2)}
        for pid in "abc":
            assert set(self.payloads(deployment, pid)) == expected
            # Self Delivery, concretely: own messages came back.
            assert f"{pid}-0" in self.payloads(deployment, pid)

    def test_reconfiguration(self, substrate):
        deployment = run_scenario(substrate, scenario_reconfiguration)
        deployment.check()
        assert self.payloads(deployment, "a") == ["pre", "mid", "post"]
        # c was out of the group while "mid" was sent:
        assert self.payloads(deployment, "c") == ["pre", "post"]
        assert deployment.current_view("a").members == {"a", "b", "c"}

    def test_virtual_synchrony(self, substrate):
        deployment = run_scenario(substrate, scenario_virtual_synchrony)
        deployment.check()
        for pid in "ab":
            got = self.payloads(deployment, pid)
            assert "left" in got and "right" not in got
        for pid in "cd":
            got = self.payloads(deployment, pid)
            assert "right" in got and "left" not in got
        for pid in "abcd":
            assert "merged" in self.payloads(deployment, pid)
            assert deployment.current_view(pid).members == {"a", "b", "c", "d"}

    def test_churn(self, substrate):
        deployment = run_scenario(substrate, scenario_churn)
        deployment.check()
        assert self.payloads(deployment, "a") == ["hello", "while-down", "back"]
        got_c = self.payloads(deployment, "c")
        assert "while-down" not in got_c
        assert "back" in got_c

    def test_crash_mid_sync(self, substrate):
        # Section 8 crash semantics with traffic still in flight: the
        # survivors keep every message (Self Delivery and Virtual
        # Synchrony hold across the crash view change), and the
        # recovered process rejoins with a fresh state - it sees the
        # post-recovery traffic but none of what it missed while down.
        deployment = run_scenario(substrate, scenario_crash_mid_sync)
        deployment.check()
        for pid in "ab":
            per_sender = {}
            for sender, payload in deployment.delivered(pid):
                per_sender.setdefault(sender, []).append(payload)
            # Per-sender FIFO is guaranteed; cross-sender order is not.
            assert per_sender["a"] == ["pre", "inflight-1", "after"]
            assert per_sender["b"] == ["inflight-2"]
            assert per_sender["c"] == ["back"]
        got_c = self.payloads(deployment, "c")
        assert "after" not in got_c
        assert got_c[-1] == "back"
        for pid in "abc":
            assert deployment.current_view(pid).members == {"a", "b", "c"}
