"""Liveness (Property 4.2) under fair executions.

The property is conditional: once the membership stabilises on a view,
every member must deliver it and all messages subsequently sent in it.
These tests arrange the stability assumption in both execution substrates
and assert the conclusion.
"""

import pytest

from repro.checking import check_liveness
from repro.harness import ModelHarness
from repro.net import ConstantLatency, SimWorld


class TestModelLiveness:
    @pytest.mark.parametrize("seed", range(5))
    def test_stable_view_and_messages_delivered(self, seed):
        harness = ModelHarness(
            "abcd", seed=seed, scripts={p: [f"{p}{i}" for i in range(3)] for p in "abcd"}
        )
        scheduler = harness.scheduler("fair")
        view = harness.form_view("abcd")
        scheduler.run(max_steps=60_000)
        assert harness.system.quiescent()
        check_liveness(harness.gcs_trace(), view)

    def test_liveness_after_turbulence(self):
        # Chaotic prefix, then stabilisation: the final view must land.
        harness = ModelHarness("abc", seed=9, scripts={p: [f"{p}0"] for p in "abc"})
        scheduler = harness.scheduler("fair")
        for action in harness.driver.random_behaviour(3):
            if harness.mbrshp.is_enabled(action):
                harness.system.execute(harness.mbrshp, action)
            scheduler.run(max_steps=40)
        final = harness.form_view("abc")
        for p in "abc":
            harness.clients[p].queue(f"{p}-final")
        scheduler.run(max_steps=80_000)
        assert harness.system.quiescent()
        check_liveness(harness.gcs_trace(), final)

    def test_blocked_clients_do_not_deadlock(self):
        harness = ModelHarness("ab", seed=4, scripts={"a": ["m"] * 5, "b": []})
        scheduler = harness.scheduler("fair")
        view = harness.form_view("ab")
        scheduler.run(max_steps=40_000)
        check_liveness(harness.gcs_trace(), view)


class TestSimLiveness:
    def test_liveness_with_message_recovery_through_forwarding(self):
        # p3 partitions away after sending; survivors must still converge
        # and agree, recovering committed messages via forwarding.
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
        nodes = world.add_nodes([f"p{i}" for i in range(4)])
        world.start()
        world.run()
        nodes[3].send("from p3")
        world.run_until(world.now() + 1.0)  # in flight to some, not all
        world.partition([["p0", "p1", "p2"], ["p3"]])
        world.run()
        final = next(v for v in reversed(world.oracle.views_formed) if len(v.members) == 3)
        assert world.all_in_view(final)
        counts = {p: [m for s, m in world.nodes[p].delivered if s == "p3"] for p in ("p0", "p1", "p2")}
        assert len(set(map(tuple, counts.values()))) == 1  # agreement on p3's prefix

    def test_every_member_delivers_stable_view_and_traffic(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
        nodes = world.add_nodes([f"p{i}" for i in range(6)])
        world.start()
        world.run()
        view = world.oracle.views_formed[-1]
        for node in nodes:
            node.send("stable-" + node.pid)
        world.run()
        check_liveness(world.trace, view)
