"""Full-stack integration: groups x ordering x state machines.

These scenarios combine the extension layers the way a real application
would, over the simulated deployment, and check both the application-level
outcome and the GCS safety battery.
"""

import pytest

from repro.apps import ReplicatedStateMachine
from repro.checking import check_all_safety
from repro.groups import MultiGroupWorld
from repro.net import ConstantLatency, SimWorld, UniformLatency
from repro.order import CausalOrderNode, TotalOrderNode


class TestOrderingOverGroups:
    def test_total_order_per_group(self):
        world = MultiGroupWorld(latency=ConstantLatency(1.0), round_duration=1.0)
        pids = ["p0", "p1", "p2"]
        for pid in pids:
            world.add_process(pid)
        for pid in pids:
            world.join(pid, "chat")
            world.join(pid, "audit")
        world.run()

        class GroupMember:
            """Adapts one group of a MultiGroupProcess to the member API."""

            def __init__(self, process, group):
                self.process = process
                self.group = group
                self.pid = process.pid

            def send(self, payload):
                self.process.send(self.group, payload)

            def set_app(self, on_deliver=None, on_view=None):
                runner = self.process._runner_for(self.group)
                runner._on_deliver = on_deliver
                runner._on_view = on_view

        chat = [TotalOrderNode(GroupMember(world.processes[p], "chat")) for p in pids]
        audit = [TotalOrderNode(GroupMember(world.processes[p], "audit")) for p in pids]
        # re-deliver current views to the freshly attached layers
        world._oracles["chat"].reconfigure([pids])
        world._oracles["audit"].reconfigure([pids])
        world.run()

        for i in range(3):
            chat[i].broadcast(f"c{i}")
            audit[i].broadcast(f"a{i}")
        world.run()
        chat_orders = {tuple(n.total_order()) for n in chat}
        audit_orders = {tuple(n.total_order()) for n in audit}
        assert len(chat_orders) == 1
        assert len(audit_orders) == 1
        assert {p for _s, p in chat_orders.pop()} == {"c0", "c1", "c2"}
        assert {p for _s, p in audit_orders.pop()} == {"a0", "a1", "a2"}


class TestStateMachineUnderJitter:
    @pytest.mark.parametrize("seed", range(3))
    def test_bank_accounts_converge(self, seed):
        def apply_op(state, operation):
            kind, account, amount = operation
            balances = dict(state)
            if kind == "deposit":
                balances[account] = balances.get(account, 0) + amount
            elif kind == "withdraw" and balances.get(account, 0) >= amount:
                balances[account] = balances[account] - amount
            return balances

        world = SimWorld(
            latency=UniformLatency(0.2, 2.5, seed=seed),
            membership="oracle",
            round_duration=2.0,
        )
        pids = [f"bank{i}" for i in range(4)]
        replicas = [
            ReplicatedStateMachine(world.add_node(pid), {}, apply_op)
            for pid in pids
        ]
        world.start()
        world.run()
        replicas[0].command(("deposit", "alice", 100))
        replicas[1].command(("withdraw", "alice", 30))
        replicas[2].command(("deposit", "bob", 50))
        replicas[3].command(("withdraw", "alice", 100))  # may bounce, same everywhere
        world.run()
        states = {tuple(sorted(r.state.items())) for r in replicas}
        assert len(states) == 1, states
        final = dict(states.pop())
        assert final["bob"] == 50
        assert final["alice"] in (70, 170 - 130, 0, 70 - 0)  # deterministic per order
        check_all_safety(world.trace, list(world.nodes))

    def test_crash_mid_commands_keeps_survivors_consistent(self):
        def apply_op(state, operation):
            return state + [operation]

        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
        pids = ["r0", "r1", "r2"]
        replicas = [ReplicatedStateMachine(world.add_node(p), [], apply_op) for p in pids]
        world.start()
        world.run()
        replicas[0].command("op-1")
        world.run_until(world.now() + 0.5)
        world.crash("r2")
        world.run()
        replicas[1].command("op-2")
        world.run()
        assert replicas[0].state == replicas[1].state
        assert replicas[0].state[-1] == "op-2"
        check_all_safety(world.trace, list(world.nodes))
