"""Golden-trace conformance: sim-recorded skeletons bind the substrates.

The E15 claim made mechanical: record a scenario's time-free trace
skeleton (per-process view segments with their sends and per-sender
delivery orders) on the simulator, then require the asyncio and TCP
runs of the *same scenario script* to refine it exactly - same
segments, same orders - via the verdict engine's VS-SKEL rule.  A
seeded chaos schedule gets the same treatment.

Honest limit: ``scenario_crash_mid_sync`` races a crash against
in-flight deliveries, and whether a survivor's delivery lands before or
after the crash-induced view change is a substrate scheduling fact, not
a correctness fact.  Its skeleton is therefore *per-substrate*
deterministic (asserted below) but not substrate-independent, and it is
deliberately absent from the cross-substrate set.
"""

import pytest

from repro.chaos import ChaosPlan, ChaosRunner, FaultModel
from repro.checking import TraceSkeleton, extract_skeleton, run_verdict
from repro.deploy import (
    run_scenario,
    scenario_churn,
    scenario_crash_mid_sync,
    scenario_reconfiguration,
    scenario_self_delivery,
    scenario_virtual_synchrony,
)

#: Scenarios whose delivery interleavings are substrate-independent.
STABLE_SCENARIOS = {
    "self_delivery": scenario_self_delivery,
    "reconfiguration": scenario_reconfiguration,
    "virtual_synchrony": scenario_virtual_synchrony,
    "churn": scenario_churn,
}

#: A fault-free chaos schedule verified stable across substrates.
CHAOS_SEED = 7


def chaos_plan():
    return ChaosPlan.generate(CHAOS_SEED).with_faults(FaultModel())


@pytest.fixture(scope="module")
def sim_goldens():
    """Lazily recorded sim skeletons, one sim run per scenario."""
    cache = {}

    def record(name):
        if name not in cache:
            deployment = run_scenario("sim", STABLE_SCENARIOS[name])
            cache[name] = deployment.skeleton()
        return cache[name]

    return record


@pytest.mark.parametrize("name", sorted(STABLE_SCENARIOS))
@pytest.mark.parametrize("substrate", ["async", "tcp"])
def test_substrate_run_refines_the_sim_golden(name, substrate, sim_goldens):
    golden = sim_goldens(name)
    deployment = run_scenario(substrate, STABLE_SCENARIOS[name])
    verdict = deployment.verdict(golden=golden)
    assert verdict.ok, verdict.to_json(indent=2)
    assert "VS-SKEL" in verdict.rules


@pytest.mark.parametrize("name", sorted(STABLE_SCENARIOS))
def test_sim_recording_is_repeatable(name, sim_goldens):
    golden = sim_goldens(name)
    again = run_scenario("sim", STABLE_SCENARIOS[name]).skeleton()
    assert golden.to_json() == again.to_json()


def test_golden_round_trips_through_json(sim_goldens):
    golden = sim_goldens("reconfiguration")
    assert TraceSkeleton.from_json(golden.to_json()) == golden


def test_perturbed_golden_is_rejected(sim_goldens):
    """A skeleton the run does not match must fail with VS-SKEL."""
    golden = sim_goldens("reconfiguration")
    deployment = run_scenario("sim", STABLE_SCENARIOS["reconfiguration"])
    perturbed = TraceSkeleton.from_json(golden.to_json())
    segments = next(iter(perturbed.procs.values()))
    sends = next(s["sends"] for s in segments if s["sends"])
    sends.append("never-sent")
    verdict = deployment.verdict(golden=perturbed)
    assert not verdict.ok
    assert verdict.primary.code == "VS-SKEL"


def test_seeded_chaos_episode_is_skeleton_stable_across_substrates():
    plan = chaos_plan()
    episode = ChaosRunner("sim").run(plan)
    assert episode.ok, episode.summary()
    golden = extract_skeleton(episode.trace)
    for substrate in ("async", "tcp"):
        other = ChaosRunner(substrate).run(plan)
        assert other.ok, other.summary()
        verdict = run_verdict(
            other.trace, list(plan.processes), golden=golden
        )
        assert verdict.ok, f"{substrate}: {verdict.to_json(indent=2)}"


@pytest.mark.parametrize("substrate", ["sim", "async", "tcp"])
def test_crash_mid_sync_is_per_substrate_deterministic(substrate):
    """The honest limit, held to its exact shape: crash_mid_sync need
    not match across substrates, but each substrate must reproduce its
    own skeleton run over run."""
    first = run_scenario(substrate, scenario_crash_mid_sync).skeleton()
    second = run_scenario(substrate, scenario_crash_mid_sync).skeleton()
    assert first.to_json() == second.to_json()
