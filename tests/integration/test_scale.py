"""Larger-scale smoke tests (the DESIGN.md E1 envelope up to n=48)."""

import pytest

from repro.checking import check_all_safety, check_liveness
from repro.core import GcsEndpoint
from repro.experiments import measure_reconfiguration
from repro.net import ConstantLatency, SimWorld


def test_one_round_claim_holds_at_48_members():
    result = measure_reconfiguration(GcsEndpoint, group_size=48)
    assert result.extra_rounds == pytest.approx(0.0)
    survivors = 47
    assert result.sync_messages == survivors * (survivors - 1)


def test_large_group_traffic_and_merge():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle",
                     round_duration=2.0, ack_gc_interval=10)
    pids = [f"p{i:02d}" for i in range(24)]
    nodes = world.add_nodes(pids)
    world.start()
    world.run()
    for node in nodes[:6]:
        node.send("burst-" + node.pid)
    world.run()
    world.partition([pids[:12], pids[12:]])
    world.run()
    world.heal()
    world.run()
    final = world.oracle.views_formed[-1]
    assert world.all_in_view(final)
    check_all_safety(world.trace, list(world.nodes))
    check_liveness(world.trace, final)


def test_many_small_views_churn():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
    pids = [f"p{i}" for i in range(8)]
    world.add_nodes(pids)
    world.start()
    world.run()
    # rotate a leaver through the group
    for victim in pids[:5]:
        world.crash(victim)
        world.run()
        world.recover(victim)
        world.run()
    final = world.oracle.views_formed[-1]
    assert final.members == set(pids)
    assert world.all_in_view(final)
    check_all_safety(world.trace, list(world.nodes))
