"""Server crashes on every substrate: the paper's Section-8 assumption,
relaxed end to end.

The membership tier is a first-class fault domain now: a server can
crash (its clients fail over), recover from the durable watermark store
(peers adopt it - a rejoin, not a fork), and the tier can partition
independently of the client network.  Each run is audited with the full
verdict battery, which includes the two server fault-domain rules, so
Local Monotonicity surviving a server death is *checked*, not assumed.
"""

import pytest

from repro.checking.events import MbrshpFormEvent
from repro.deploy import SUBSTRATES, run_scenario


def payloads(deployment, pid):
    return [m for _s, m in deployment.delivered(pid)]


async def scenario_server_crash_recover(d):
    """Crash one membership server mid-traffic, then bring it back."""
    await d.setup(["a", "b", "c"])
    await d.send("a", "before")
    sid = await d.server_crash()
    assert sid in d.server_ids()
    await d.send("b", "during")
    await d.server_recover(sid)
    await d.send("c", "after")
    await d.settle()


@pytest.mark.parametrize("substrate", SUBSTRATES)
class TestServerFaultMatrix:
    def _run(self, substrate, scenario):
        kwargs = {"servers": 3}
        if substrate == "sim":
            kwargs["membership"] = "tier"
        return run_scenario(substrate, scenario, **kwargs)

    def test_monotonicity_survives_server_death(self, substrate):
        deployment = self._run(substrate, scenario_server_crash_recover)
        verdict = deployment.verdict()
        assert verdict.ok, verdict.to_json(indent=2)
        assert {"MBRSHP-SRV-FORK", "MBRSHP-SRV-MONO"} <= set(verdict.rules)
        # No payload is lost to the server fault: the clients never left.
        for pid in "abc":
            assert payloads(deployment, pid) == ["before", "during", "after"]
        # Views kept strictly increasing at every client across the
        # crash and the recovery (VS-MONO is in the battery, but assert
        # the concrete counters too).
        for pid in "abc":
            counters = [v.vid.counter for v in deployment.views(pid)]
            assert counters == sorted(set(counters))

    def test_tier_traffic_is_link_accounted(self, substrate):
        """Tier control messages ride the same LinkCore as data traffic:
        they show up in the uniform per-kind counters."""
        deployment = self._run(substrate, scenario_server_crash_recover)
        totals = deployment.link_totals()
        for kind in ("StartChangeNotice", "ViewNotice"):
            assert totals.get(kind, 0) > 0, (kind, totals)
        if substrate != "sim":
            # Multi-server substrates also gossip proposals server-to-server.
            assert totals.get("ServerProposal", 0) > 0, totals

    def test_formations_recorded_on_this_substrate(self, substrate):
        deployment = self._run(substrate, scenario_server_crash_recover)
        formations = deployment.trace.of_type(MbrshpFormEvent)
        assert formations, "tier-mode runs must record view formations"
        assert {e.proc for e in formations} <= set(deployment.server_ids())


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_server_partition_and_heal(substrate):
    """Split the server tier itself; clients follow their home server."""

    async def scenario(d):
        await d.setup(["a", "b", "c", "d"])
        await d.send("a", "joint")
        servers = d.server_ids()
        await d.server_partition([servers[:1], servers[1:]])
        await d.settle()
        sides = [d.current_view(p).members for p in "abcd"]
        assert all(len(s) < 4 for s in sides), sides
        await d.heal()
        await d.settle()
        for pid in "abcd":
            assert d.current_view(pid).members == {"a", "b", "c", "d"}

    kwargs = {"servers": 2}
    if substrate == "sim":
        kwargs["membership"] = "tier"
    deployment = run_scenario(substrate, scenario, **kwargs)
    verdict = deployment.verdict()
    assert verdict.ok, verdict.to_json(indent=2)


def test_oracle_substrate_has_no_server_fault_domain():
    """The paper's original model is still available: oracle membership
    reports no crashable servers and refuses the server-fault API."""

    async def scenario(d):
        await d.setup(["a", "b"])
        assert d.server_ids() == []
        with pytest.raises((NotImplementedError, ValueError)):
            await d.server_crash()

    run_scenario("sim", scenario)
