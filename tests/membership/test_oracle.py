"""Unit tests for the centralized membership oracle."""

import pytest

from repro.membership.oracle import OracleMembership
from repro.net.simclock import EventScheduler


class Sink:
    def __init__(self):
        self.start_changes = []
        self.views = []


def attach(oracle, pids):
    sinks = {}
    for pid in pids:
        sink = Sink()
        oracle.attach_client(
            pid,
            on_start_change=lambda cid, members, s=sink: s.start_changes.append((cid, members)),
            on_view=lambda view, s=sink: s.views.append(view),
        )
        sinks[pid] = sink
    return sinks


@pytest.fixture
def world():
    clock = EventScheduler()
    oracle = OracleMembership(clock, detection_delay=1.0, round_duration=3.0)
    return clock, oracle


def test_timing_of_start_change_and_view(world):
    clock, oracle = world
    sinks = attach(oracle, ["a", "b"])
    oracle.reconfigure([["a", "b"]])
    clock.run_until(0.5)
    assert sinks["a"].start_changes == []
    clock.run_until(1.0)
    assert len(sinks["a"].start_changes) == 1
    clock.run_until(3.9)
    assert sinks["a"].views == []
    clock.run_until(4.0)
    assert len(sinks["a"].views) == 1


def test_view_start_ids_match_latest_start_changes(world):
    clock, oracle = world
    sinks = attach(oracle, ["a", "b"])
    oracle.reconfigure([["a", "b"]])
    clock.run()
    view = sinks["a"].views[0]
    assert view.start_id("a") == sinks["a"].start_changes[-1][0]
    assert view.start_id("b") == sinks["b"].start_changes[-1][0]


def test_extra_changes_emit_multiple_start_changes(world):
    clock, oracle = world
    sinks = attach(oracle, ["a"])
    oracle.reconfigure([["a"]], extra_changes=2)
    clock.run()
    assert len(sinks["a"].start_changes) == 3
    assert sinks["a"].views[0].start_id("a") == sinks["a"].start_changes[-1][0]


def test_new_reconfigure_cancels_pending_view(world):
    clock, oracle = world
    sinks = attach(oracle, ["a", "b"])
    oracle.reconfigure([["a", "b"]])
    clock.run_until(2.0)  # mid-round
    oracle.reconfigure([["a"]])
    clock.run()
    # the first (superseded) view never reaches a
    assert len(sinks["a"].views) == 1
    assert sinks["a"].views[0].members == {"a"}


def test_crashed_clients_excluded(world):
    clock, oracle = world
    sinks = attach(oracle, ["a", "b"])
    oracle.client_crashed("b")
    oracle.reconfigure([["a", "b"]])
    clock.run()
    assert sinks["b"].views == []
    assert sinks["a"].views[0].members == {"a"}


def test_view_counters_increase_across_groups(world):
    clock, oracle = world
    attach(oracle, ["a", "b"])
    views = oracle.reconfigure([["a"], ["b"]])
    assert views[0].vid != views[1].vid
    more = oracle.reconfigure([["a", "b"]])
    assert more[0].vid > max(views[0].vid, views[1].vid)


def test_empty_group_skipped(world):
    _clock, oracle = world
    attach(oracle, ["a"])
    oracle.client_crashed("a")
    assert oracle.reconfigure([["a"]]) == []
