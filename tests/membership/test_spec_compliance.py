"""Both membership implementations must satisfy the MBRSHP spec (Figure 2).

Each client's notice stream is replayed through the ``MbrshpSpec``
acceptor: any disabled step is a violation of the Figure 2 contract.
"""

import pytest

from repro.checking.events import MbrshpStartChangeEvent, MbrshpViewEvent
from repro.errors import ActionNotEnabled
from repro.ioa import Action
from repro.net import ConstantLatency, SimWorld
from repro.spec.mbrshp import MbrshpSpec


def replay_membership_events(trace, processes):
    spec = MbrshpSpec(processes)
    for event in trace:
        if isinstance(event, MbrshpStartChangeEvent):
            action = Action("mbrshp.start_change", (event.proc, event.cid, event.members))
        elif isinstance(event, MbrshpViewEvent):
            action = Action("mbrshp.view", (event.proc, event.view))
        else:
            continue
        assert spec.is_enabled(action), f"MBRSHP spec violated by {action!r}"
        spec.apply(action)
    return spec


@pytest.mark.parametrize("servers", [1, 2, 3])
def test_server_membership_satisfies_spec(servers):
    world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=servers)
    world.add_nodes([f"p{i}" for i in range(5)])
    world.start()
    world.run(max_events=100_000)
    replay_membership_events(world.trace, list(world.nodes))


def test_server_membership_spec_through_churn():
    world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
    nodes = world.add_nodes([f"p{i}" for i in range(4)])
    world.start()
    world.run(max_events=100_000)
    world.crash(nodes[0].pid)
    world.run(max_events=100_000)
    world.recover(nodes[0].pid)
    world.run(max_events=100_000)
    replay_membership_events(world.trace, list(world.nodes))


def test_oracle_membership_satisfies_spec():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    world.add_nodes([f"p{i}" for i in range(5)])
    world.start()
    world.run()
    world.partition([["p0", "p1"], ["p2", "p3", "p4"]])
    world.run()
    world.heal()
    world.run()
    replay_membership_events(world.trace, list(world.nodes))


def test_oracle_with_repeated_changes_satisfies_spec():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    world.add_nodes(["a", "b", "c"])
    world.start()
    world.run_until(0.5)
    world.oracle.reconfigure([["a", "b", "c"]], extra_changes=2)
    world.run()
    replay_membership_events(world.trace, list(world.nodes))
