"""Unit tests for the membership server protocol."""

from typing import Any, Dict, List, Tuple

import pytest

from repro.membership.protocol import ServerProposal, StartChangeNotice, ViewNotice
from repro.membership.server import MembershipServer


class Fabric:
    """Zero-latency loopback fabric for servers and client mailboxes."""

    def __init__(self):
        self.servers: Dict[str, MembershipServer] = {}
        self.client_mail: Dict[str, List[Any]] = {}
        self.in_flight: List[Tuple[str, str, Any]] = []
        self.online = True

    def add_server(self, sid: str, clients=()):
        server = MembershipServer(sid, send=lambda dst, m, s=sid: self.send(s, dst, m), clients=clients)
        self.servers[sid] = server
        return server

    def send(self, src: str, dst: str, message: Any) -> None:
        if dst in self.servers:
            self.in_flight.append((src, dst, message))
        else:
            self.client_mail.setdefault(dst, []).append(message)

    def pump(self, rounds: int = 50):
        for _ in range(rounds):
            if not self.in_flight:
                return
            batch, self.in_flight = self.in_flight, []
            for src, dst, message in batch:
                self.servers[dst].on_message(src, message)

    def bootstrap(self):
        sids = frozenset(self.servers)
        for server in self.servers.values():
            server.activate(sids)
        self.pump()

    def views_of(self, client: str) -> List[Any]:
        return [m.view for m in self.client_mail.get(client, []) if isinstance(m, ViewNotice)]

    def notices_of(self, client: str) -> List[Any]:
        return list(self.client_mail.get(client, []))


@pytest.fixture
def fabric():
    return Fabric()


def test_single_server_forms_view_in_one_round(fabric):
    server = fabric.add_server("srv:0", clients=["a", "b"])
    fabric.bootstrap()
    assert server.rounds_started == 1
    views = fabric.views_of("a")
    assert len(views) == 1
    assert views[0].members == {"a", "b"}


def test_start_change_precedes_view(fabric):
    fabric.add_server("srv:0", clients=["a"])
    fabric.bootstrap()
    notices = fabric.notices_of("a")
    assert isinstance(notices[0], StartChangeNotice)
    assert isinstance(notices[-1], ViewNotice)


def test_view_start_ids_match_notices(fabric):
    fabric.add_server("srv:0", clients=["a", "b"])
    fabric.bootstrap()
    last_cid = {}
    for notice in fabric.notices_of("a"):
        if isinstance(notice, StartChangeNotice):
            last_cid[notice.client] = notice.cid
        else:
            assert notice.view.start_id("a") == last_cid["a"]


def test_two_servers_converge_to_identical_view(fabric):
    fabric.add_server("srv:0", clients=["a"])
    fabric.add_server("srv:1", clients=["b"])
    fabric.bootstrap()
    va = fabric.views_of("a")[-1]
    vb = fabric.views_of("b")[-1]
    assert va == vb  # identical triples, including startId maps
    assert va.members == {"a", "b"}


def test_cold_start_takes_at_most_two_rounds(fabric):
    fabric.add_server("srv:0", clients=["a"])
    fabric.add_server("srv:1", clients=["b"])
    fabric.bootstrap()
    assert all(s.rounds_started <= 2 for s in fabric.servers.values())


def test_warm_registry_single_round(fabric):
    s0 = fabric.add_server("srv:0", clients=["a"])
    fabric.add_server("srv:1", clients=["b"])
    fabric.bootstrap()
    before = {sid: s.rounds_started for sid, s in fabric.servers.items()}
    s0.add_client("c")
    fabric.pump()
    after = {sid: s.rounds_started for sid, s in fabric.servers.items()}
    # one extra round each: registries were warm
    assert all(after[sid] == before[sid] + 1 for sid in after)
    assert fabric.views_of("c")[-1].members == {"a", "b", "c"}


def test_client_crash_removes_from_next_view(fabric):
    server = fabric.add_server("srv:0", clients=["a", "b"])
    fabric.bootstrap()
    server.client_crashed("b")
    fabric.pump()
    assert fabric.views_of("a")[-1].members == {"a"}


def test_client_recovery_rejoins(fabric):
    server = fabric.add_server("srv:0", clients=["a", "b"])
    fabric.bootstrap()
    server.client_crashed("b")
    fabric.pump()
    server.client_recovered("b")
    fabric.pump()
    assert fabric.views_of("a")[-1].members == {"a", "b"}


def test_cids_monotonic_per_client_across_views(fabric):
    server = fabric.add_server("srv:0", clients=["a"])
    fabric.bootstrap()
    server.add_client("b")
    fabric.pump()
    server.remove_client("b")
    fabric.pump()
    cids = [n.cid for n in fabric.notices_of("a") if isinstance(n, StartChangeNotice)]
    assert cids == sorted(cids)
    assert len(set(cids)) == len(cids)


def test_view_counters_strictly_increase(fabric):
    server = fabric.add_server("srv:0", clients=["a"])
    fabric.bootstrap()
    server.add_client("b")
    fabric.pump()
    counters = [v.vid.counter for v in fabric.views_of("a")]
    assert counters == sorted(counters)
    assert len(set(counters)) == len(counters)


def test_shrunk_reachability_forms_partition_view(fabric):
    s0 = fabric.add_server("srv:0", clients=["a"])
    fabric.add_server("srv:1", clients=["b"])
    fabric.bootstrap()
    fabric.online = False
    s0.set_reachable({"srv:0"})
    # messages to srv:1 would be dropped; s0 is alone and forms {a}
    assert fabric.views_of("a")[-1].members == {"a"}


def test_stale_proposals_ignored(fabric):
    s0 = fabric.add_server("srv:0", clients=["a"])
    fabric.bootstrap()
    stale = ServerProposal(
        server="srv:9",
        attempt=1,
        config=frozenset({"srv:0", "srv:9"}),
        local_clients=frozenset({"z"}),
        cids={},
        estimate=frozenset({"z"}),
        max_counter=0,
    )
    s0.on_message("srv:9", stale)  # unknown server: must be ignored
    assert "srv:9" not in s0._proposals


def test_inactive_server_defers_rounds():
    server = MembershipServer("srv:0", send=lambda dst, m: None)
    server.add_client("a")
    server.add_client("b")
    assert server.rounds_started == 0
