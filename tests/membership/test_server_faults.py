"""The server fault domain: snapshot/restore, durable watermarks, wraparound.

The paper's Section 8 assumes membership servers "never crash and never
forget".  These tests exercise the machinery that *relaxes* that
assumption - the explicit :class:`ServerState`, the tier-owned
:class:`WatermarkStore`, and epoch-composed bounded counters - at the
tier level, over a synchronous loopback link.
"""

import asyncio

import pytest

from repro.checking.events import GcsTrace, MbrshpFormEvent
from repro.membership import MembershipTier
from repro.membership.state import (
    ServerState,
    WatermarkStore,
    compose_counter,
    decompose_counter,
)


class LoopbackLink:
    """Buffering TierLink: fire-and-forget transmit, FIFO drain."""

    def __init__(self):
        self.handlers = {}
        self.inboxes = {}
        self.queue = []

    async def attach(self, sid, handler):
        self.handlers[sid] = handler

    def attach_sync(self, sid, handler):
        self.handlers[sid] = handler

    def transmit(self, src, dst, message):
        self.queue.append((src, dst, message))

    def drain(self):
        while self.queue:
            src, dst, message = self.queue.pop(0)
            if dst in self.handlers:
                self.handlers[dst](src, message)
            else:
                self.inboxes.setdefault(dst, []).append(message)


class Driver:
    def __init__(self, clients=("a", "b", "c"), servers=2, **tier_kwargs):
        self.link = LoopbackLink()
        self.tier = MembershipTier(self.link, servers=servers, **tier_kwargs)
        for pid in clients:
            self.tier.add_client(pid)
        asyncio.run(self.tier.start())
        self.link.drain()

    def do(self, fn, *args, **kwargs):
        result = fn(*args, **kwargs)
        self.link.drain()
        return result


# ----------------------------------------------------------------------
# ServerState / WatermarkStore values
# ----------------------------------------------------------------------


def test_server_state_dict_roundtrip():
    state = ServerState(
        sid="srv:0",
        local_clients=("a", "b"),
        crashed_clients=("b",),
        round=7,
        epoch=2,
        counter=1,
        counter_bound=4,
        cids=(("a", 3), ("b", 5)),
        modes=(("a", "NORMAL"), ("b", "CHANGE_STARTED")),
    )
    assert ServerState.from_dict(state.to_dict()) == state
    assert state.max_counter == 2 * 4 + 1


def test_counter_composition_roundtrip():
    for bound in (None, 1, 4, 100):
        for value in (0, 1, 3, 4, 17, 399):
            epoch, local = decompose_counter(value, bound)
            assert compose_counter(epoch, local, bound) == value
            if bound is not None:
                assert 0 <= local < bound


def test_watermark_store_dict_roundtrip():
    store = WatermarkStore()
    store.observe(3, 9)
    store.persist(
        ServerState("srv:1", (), (), 5, 0, 11, None, (), ())
    )
    clone = WatermarkStore.from_dict(store.to_dict())
    assert clone.round_floor() == store.round_floor() == 5
    assert clone.counter_floor() == store.counter_floor() == 11
    assert clone.load("srv:1") == store.load("srv:1")
    assert clone.load("srv:404") is None


# ----------------------------------------------------------------------
# crash / recover at the tier
# ----------------------------------------------------------------------


def test_crash_rehomes_clients_and_persists_snapshot():
    driver = Driver(clients=("a", "b", "c", "d"), servers=2)
    tier = driver.tier
    sid = driver.do(tier.crash_server)
    assert tier.servers[sid].crashed
    assert tier.store.load(sid) is not None
    # Its clients failed over: the survivor re-forms the full view.
    view = tier.views_formed[-1]
    assert view.members == {"a", "b", "c", "d"}
    assert tier.clients_of(tier.alive_servers()) == {"a", "b", "c", "d"}


def test_last_alive_server_cannot_crash():
    driver = Driver(servers=2)
    driver.do(driver.tier.crash_server)
    with pytest.raises(ValueError, match="last alive server"):
        driver.tier.crash_server()


def test_crashed_server_says_and_hears_nothing():
    driver = Driver(servers=2)
    tier = driver.tier
    sid = driver.do(tier.crash_server)
    dead = tier.servers[sid]
    rounds = dead.rounds_started
    dead.on_message("srv:0", object())  # dropped, not an error
    dead.activate(tier.servers)
    assert dead.rounds_started == rounds


def test_recovery_rejoins_without_forking():
    driver = Driver(clients=("a", "b", "c"), servers=3)
    tier = driver.tier
    sid = driver.do(tier.crash_server)
    pre_crash = tier.watermark()
    # Life goes on without the dead server.
    driver.do(tier.set_members, ["a", "b"])
    driver.do(tier.set_members, ["a", "b", "c"])
    driver.do(tier.recover_server, sid)
    server = tier.servers[sid]
    assert not server.crashed
    # Floored by the durable store: its first new round exceeds every
    # pre-crash round, and it can never issue a counter a client saw.
    assert server.round >= tier.store.round_floor()
    assert server.max_counter >= tier.store.counter_floor() > pre_crash
    driver.do(tier.set_members, ["a", "b"])
    counters = [v.vid.counter for v in tier.views_formed]
    assert counters == sorted(set(counters)), "a recovery must not fork views"


def test_watermark_survives_every_server_crashing():
    driver = Driver(clients=("a", "b"), servers=2)
    tier = driver.tier
    driver.do(tier.set_members, ["a"])
    high = tier.watermark()
    driver.do(tier.crash_server)
    # The live server's memory is irrelevant: the floor is durable.
    assert tier.store.counter_floor() >= high
    assert tier.watermark() >= high


def test_clientless_coformer_snapshot_is_persisted():
    # Three servers, two clients: one server forms views it serves no
    # client in.  Durability must cover it anyway (a recovery after all
    # its peers crash must still know the watermarks).
    driver = Driver(clients=("a", "b"), servers=3)
    tier = driver.tier
    clientless = [s for s in tier.servers.values() if not s.local_clients]
    assert clientless, "expected at least one client-less server"
    for server in clientless:
        assert tier.store.load(server.sid) is not None


# ----------------------------------------------------------------------
# bounded counters (wraparound convergence)
# ----------------------------------------------------------------------


def test_bounded_counter_wraps_without_regressing():
    driver = Driver(clients=("a", "b", "c"), servers=1, counter_bound=3)
    tier = driver.tier
    for _ in range(4):  # push the external counter well past the bound
        driver.do(tier.set_members, ["a", "b"])
        driver.do(tier.set_members, ["a", "b", "c"])
    counters = [v.vid.counter for v in tier.views_formed]
    assert counters == sorted(set(counters))
    assert counters[-1] > 3, "external counter must sail past the bound"
    (server,) = tier.servers.values()
    epoch, local = server.bounded_counter()
    assert epoch >= 1 and 0 <= local < 3
    assert compose_counter(epoch, local, 3) == server.max_counter


def test_bounded_counter_survives_crash_recover():
    driver = Driver(clients=("a", "b"), servers=2, counter_bound=2)
    tier = driver.tier
    for _ in range(3):
        driver.do(tier.set_members, ["a"])
        driver.do(tier.set_members, ["a", "b"])
    sid = driver.do(tier.crash_server)
    driver.do(tier.set_members, ["a"])
    driver.do(tier.recover_server, sid)
    # The recomposed (epoch, local) watermark floors the recovered
    # server above everything any client has seen.
    assert tier.servers[sid].max_counter >= tier.store.counter_floor()
    driver.do(tier.set_members, ["a", "b"])
    counters = [v.vid.counter for v in tier.views_formed]
    assert counters == sorted(set(counters))


# ----------------------------------------------------------------------
# formation trace events (the rules' raw material)
# ----------------------------------------------------------------------


def test_formation_events_cover_every_coformer():
    trace = GcsTrace()
    driver = Driver(clients=("a", "b"), servers=2, trace=trace)
    formations = trace.of_type(MbrshpFormEvent)
    view = driver.tier.views_formed[-1]
    assert {e.proc for e in formations} == set(driver.tier.servers)
    assert all(e.view == view for e in formations)


def test_origin_formation_counters_strictly_increase():
    trace = GcsTrace()
    driver = Driver(clients=("a", "b", "c"), servers=2, trace=trace)
    tier = driver.tier
    sid = driver.do(tier.crash_server)
    driver.do(tier.set_members, ["a", "b"])
    driver.do(tier.recover_server, sid)
    driver.do(tier.set_members, ["a", "b", "c"])
    by_origin = {}
    for event in trace.of_type(MbrshpFormEvent):
        vid = event.view.vid
        if event.proc != vid.origin:
            continue
        assert vid.counter > by_origin.get(vid.origin, 0)
        by_origin[vid.origin] = vid.counter
    assert by_origin, "expected at least one origin formation"
