"""Dynamic joins: processes arriving while the system is running.

The paper highlights that its interface lets the membership add new
processes *while reconfiguring* (a fresh start_change suffices) - no
completed-then-redone view. These tests exercise joins at awkward times
in both membership modes.
"""

import pytest

from repro.checking import check_all_safety
from repro.net import ConstantLatency, SimWorld


class TestOracleModeJoins:
    def test_join_after_start(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
        world.add_nodes(["a", "b"])
        world.start()
        world.run()
        late = world.add_node("late")
        world.oracle.reconfigure([list(world.nodes)])
        world.run()
        final = world.oracle.views_formed[-1]
        assert "late" in final.members
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))

    def test_join_mid_reconfiguration_supersedes_cleanly(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=4.0)
        nodes = world.add_nodes(["a", "b", "c"])
        world.start()
        world.run()
        # a change is in progress...
        world.oracle.reconfigure([["a", "b", "c"]])
        world.run_until(world.now() + 1.5)
        # ...when a newcomer arrives: revise the attempt to include it
        world.add_node("d")
        world.oracle.reconfigure([["a", "b", "c", "d"]])
        world.run()
        final = world.oracle.views_formed[-1]
        assert final.members == {"a", "b", "c", "d"}
        assert world.all_in_view(final)
        # the superseded 3-member attempt never reached any application
        delivered = [v for node in nodes for v, _t in node.views]
        assert world.oracle.views_formed[-2] not in delivered
        check_all_safety(world.trace, list(world.nodes))

    def test_joiner_receives_traffic_immediately(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
        nodes = world.add_nodes(["a", "b"])
        world.start()
        world.run()
        late = world.add_node("late")
        world.oracle.reconfigure([list(world.nodes)])
        world.run()
        nodes[0].send("welcome")
        world.run()
        assert ("a", "welcome") in late.delivered


class TestServerModeJoins:
    def test_join_through_server(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
        world.add_nodes(["a", "b", "c"])
        world.start()
        world.run(max_events=300_000)
        late = world.add_node("late")
        world.run(max_events=300_000)
        views = {node.current_view for node in world.nodes.values()}
        assert len(views) == 1
        assert next(iter(views)).members == {"a", "b", "c", "late"}
        check_all_safety(world.trace, list(world.nodes))

    def test_multiple_staggered_joins(self):
        world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
        world.add_nodes(["a"])
        world.start()
        world.run(max_events=300_000)
        for name in ("b", "c", "d"):
            world.add_node(name)
            world.run_until(world.now() + 1.0)
        world.run(max_events=500_000)
        views = {node.current_view for node in world.nodes.values()}
        assert len(views) == 1
        assert next(iter(views)).members == {"a", "b", "c", "d"}
        check_all_safety(world.trace, list(world.nodes))
