"""Differential harness: one link-contract API over all three substrates.

Each driver wraps one substrate behind the same five operations
(``start`` / ``send`` / ``drain`` / ``close`` plus the shared ``core``),
so every test in ``test_contract.py`` states the CO_RFIFO link contract
once and runs verbatim against the discrete-event simulator, the
in-process asyncio hub, and real loopback TCP sockets.  Topology is
manipulated through ``driver.core`` directly - the unified
:class:`~repro.links.LinkCore` API is itself part of the contract under
test.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import pytest

from repro.chaos.faults import FaultInjector, FaultModel
from repro.links import LinkCore
from repro.net.latency import ConstantLatency
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler
from repro.runtime.tcp import TcpTransport
from repro.runtime.transport import AsyncHub
from repro.types import ProcessId

Received = Dict[ProcessId, List[Tuple[ProcessId, Any]]]


class ContractDriver:
    """Uniform face of one substrate for the differential contract suite."""

    name = "abstract"
    #: Fault latency units in this substrate's own time (mirrors
    #: repro.chaos.runner.TIME_SCALES).
    time_scale = 1.0

    def __init__(self, model: Optional[FaultModel] = None) -> None:
        self.injector = (
            FaultInjector(model, time_scale=self.time_scale) if model else None
        )
        self.core: LinkCore = LinkCore(faults=self.injector)
        self.received: Received = {}

    def _record(self, pid: ProcessId) -> Callable[[ProcessId, Any], None]:
        self.received[pid] = []
        return lambda src, message, p=pid: self.received[p].append((src, message))

    async def start(self, pids: Iterable[ProcessId]) -> None:
        raise NotImplementedError

    async def send(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        raise NotImplementedError

    async def send_burst(self, src: ProcessId, dst: ProcessId, messages: Iterable[Any]) -> None:
        """Send a back-to-back run of messages (the batching fast case).

        On the simulator and the hub, consecutive sends coalesce into
        batched carriers on their own; the TCP driver overrides this to
        use the transport's explicit batch framing.
        """
        for message in messages:
            await self.send(src, dst, message)

    async def drain(self, predicate: Optional[Callable[[], bool]] = None) -> None:
        """Settle the substrate; with ``predicate``, wait until it holds."""
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError


class SimContractDriver(ContractDriver):
    name = "sim"
    time_scale = 1.0

    def __init__(self, model: Optional[FaultModel] = None) -> None:
        super().__init__(model)
        self.clock = EventScheduler()
        self.net = SimNetwork(self.clock, ConstantLatency(1.0), core=self.core)

    async def start(self, pids: Iterable[ProcessId]) -> None:
        for pid in pids:
            self.net.register(pid, self._record(pid))

    async def send(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        self.net.send(src, dst, message)

    async def drain(self, predicate: Optional[Callable[[], bool]] = None) -> None:
        self.clock.run()
        # Deterministic substrate: after the queue empties the predicate
        # either holds or the contract is broken - no waiting involved.

    async def close(self) -> None:
        pass


class AsyncContractDriver(ContractDriver):
    name = "async"
    time_scale = 0.003

    def __init__(self, model: Optional[FaultModel] = None) -> None:
        super().__init__(model)
        self.hub: Optional[AsyncHub] = None

    async def start(self, pids: Iterable[ProcessId]) -> None:
        self.hub = AsyncHub(core=self.core)  # pumps need the running loop
        for pid in pids:
            self.hub.register(pid, self._record(pid))

    async def send(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        assert self.hub is not None
        self.hub.send(src, [dst], message)

    async def drain(self, predicate: Optional[Callable[[], bool]] = None) -> None:
        assert self.hub is not None
        await self.hub.quiesce(timeout=10.0)

    async def close(self) -> None:
        if self.hub is not None:
            await self.hub.close()


class TcpContractDriver(ContractDriver):
    name = "tcp"
    time_scale = 0.003

    def __init__(self, model: Optional[FaultModel] = None) -> None:
        super().__init__(model)
        self.transports: Dict[ProcessId, TcpTransport] = {}

    async def start(self, pids: Iterable[ProcessId]) -> None:
        addresses: Dict[ProcessId, Tuple[str, int]] = {}
        for pid in pids:
            transport = TcpTransport(pid, self._record(pid), core=self.core)
            addresses[pid] = await transport.start()
            self.transports[pid] = transport
        for transport in self.transports.values():
            transport.set_peers(addresses)

    async def send(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        await self.transports[src].send([dst], message)

    async def send_burst(self, src: ProcessId, dst: ProcessId, messages: Iterable[Any]) -> None:
        await self.transports[src].send_many([dst], messages)

    async def drain(self, predicate: Optional[Callable[[], bool]] = None) -> None:
        loop = asyncio.get_event_loop()
        deadline = loop.time() + 5.0
        if predicate is not None:
            while not predicate():
                if loop.time() >= deadline:
                    raise AssertionError("tcp drain: predicate never held")
                await asyncio.sleep(0.005)
            return
        # No target state: wait for the wire-arrival counter to go quiet
        # (sockets give no global in-flight count).
        last, stable = -1, 0
        while stable < 3 and loop.time() < deadline:
            current = sum(self.core.stats.delivered.values())
            stable = stable + 1 if current == last else 0
            last = current
            await asyncio.sleep(0.02)

    async def close(self) -> None:
        for transport in self.transports.values():
            await transport.close()


DRIVERS = {
    SimContractDriver.name: SimContractDriver,
    AsyncContractDriver.name: AsyncContractDriver,
    TcpContractDriver.name: TcpContractDriver,
}


@pytest.fixture(params=sorted(DRIVERS))
def driver_factory(request):
    """The class of one substrate driver; tests run once per substrate."""
    return DRIVERS[request.param]


def run_contract(factory, scenario, model: Optional[FaultModel] = None) -> None:
    """Run one async contract scenario on a fresh driver of ``factory``."""

    async def main() -> None:
        driver = factory(model)
        try:
            await scenario(driver)
        finally:
            await driver.close()

    asyncio.run(main())
