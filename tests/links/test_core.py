"""Unit tests for the substrate-agnostic link core itself."""

from __future__ import annotations

from repro.chaos.faults import DuplicateCopy, FaultInjector, FaultModel
from repro.links import LinkCore, LinkStats, Transmission, kind_of


def core_with(*pids):
    core = LinkCore()
    for pid in pids:
        core.ensure(pid)
    return core


# ----------------------------------------------------------------------
# the partition/reachability matrix
# ----------------------------------------------------------------------


def test_everyone_starts_connected():
    core = core_with("a", "b", "c")
    assert core.connected("a", "b")
    assert core.reachable_from("a") == {"a", "b", "c"}
    assert core.processes() == ["a", "b", "c"]


def test_partition_and_heal():
    core = core_with("a", "b", "c")
    core.partition([["a", "b"], ["c"]])
    assert core.connected("a", "b")
    assert not core.connected("a", "c")
    core.heal()
    assert core.connected("a", "c")


def test_partition_auto_registers_and_leaves_rest_in_group_zero():
    core = core_with("a")
    core.partition([["x"]])  # x unseen before; a stays in group 0
    assert "x" in core.processes()
    assert not core.connected("a", "x")


def test_restrict_requires_mutual_allowance():
    core = core_with("a", "b", "c")
    core.restrict("a", ["c"])
    assert not core.connected("a", "b")
    assert not core.connected("b", "a")  # symmetric: b cannot reach a either
    assert core.connected("a", "c")
    assert core.connected("b", "c")  # unrelated pair untouched
    core.restrict("a", None)
    assert core.connected("a", "b")


def test_heal_lifts_restrictions():
    core = core_with("a", "b")
    core.restrict("a", [])
    assert not core.connected("a", "b")
    core.heal()
    assert core.connected("a", "b")


def test_topology_listeners_fire_on_every_change():
    core = core_with("a", "b")
    calls = []
    core.on_topology_change(lambda: calls.append(1))
    core.partition([["a"], ["b"]])
    core.restrict("a", ["b"])
    core.heal()
    assert len(calls) == 3


# ----------------------------------------------------------------------
# per-link FIFO clamp
# ----------------------------------------------------------------------


def test_fifo_arrival_is_monotone_per_link():
    core = core_with("a", "b")
    assert core.fifo_arrival("a", "b", 5.0) == 5.0
    assert core.fifo_arrival("a", "b", 3.0) == 5.0  # clamped: no overtaking
    assert core.fifo_arrival("a", "b", 7.0) == 7.0
    assert core.fifo_arrival("b", "a", 1.0) == 1.0  # other direction independent


# ----------------------------------------------------------------------
# outbound / inbound / bounced
# ----------------------------------------------------------------------


def test_outbound_across_a_cut_is_refused_and_uncounted():
    core = core_with("a", "b")
    core.partition([["a"], ["b"]])
    assert core.outbound("a", "b", "m") is None
    assert core.totals() == {}


def test_outbound_without_faults_is_one_plain_copy():
    core = core_with("a", "b")
    transmission = core.outbound("a", "b", "m")
    assert isinstance(transmission, Transmission)
    assert transmission.copies == (("m", 0.0),)
    assert not transmission.dropped
    assert core.totals() == {"str": 1}


def test_outbound_duplicate_puts_second_copy_behind_original():
    injector = FaultInjector(FaultModel(duplicate=1.0, seed=1))
    core = LinkCore(faults=injector)
    core.ensure("a")
    core.ensure("b")
    transmission = core.outbound("a", "b", "m")
    (first, _d1), (second, _d2) = transmission.copies
    assert first == "m"
    assert isinstance(second, DuplicateCopy)
    assert second.message == "m"
    assert core.totals() == {"str": 1, "DuplicateCopy": 1}
    # The marker itself must not draw a second fault decision.
    assert injector.counters["messages"] == 1


def test_outbound_drop_is_a_delay_not_a_loss():
    injector = FaultInjector(FaultModel(drop=1.0, seed=2))
    core = LinkCore(faults=injector)
    core.ensure("a")
    core.ensure("b")
    transmission = core.outbound("a", "b", "m")
    assert transmission.dropped
    ((wire, extra),) = transmission.copies
    assert wire == "m"
    assert extra > 0.0  # the retransmission penalty


def test_inbound_dedups_and_counts():
    injector = FaultInjector(FaultModel())
    core = LinkCore(faults=injector)
    core.ensure("a")
    core.ensure("b")
    assert core.inbound("a", "b", "m") == "m"
    assert core.inbound("a", "b", DuplicateCopy("m")) is None
    assert injector.counters["suppressed"] == 1
    assert core.stats.delivered == {"str": 1, "DuplicateCopy": 1}


def test_inbound_check_topology_drops_frames_across_a_cut():
    core = core_with("a", "b")
    core.partition([["a"], ["b"]])
    assert core.inbound("a", "b", "m", check_topology=True) is None
    assert core.stats.delivered == {}  # never counted as delivered
    core.heal()
    assert core.inbound("a", "b", "m", check_topology=True) == "m"


def test_bounced_filters_duplicate_copies():
    core = core_with("a", "b")
    assert core.bounced("a", "b", "m") == "m"
    assert core.bounced("a", "b", DuplicateCopy("m")) is None
    assert core.stats.bounced == {"str": 1, "DuplicateCopy": 1}


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


def test_kind_of_uses_class_name():
    assert kind_of("x") == "str"
    assert kind_of(3) == "int"
    assert kind_of(DuplicateCopy("x")) == "DuplicateCopy"


def test_totals_and_reset():
    core = core_with("a", "b")
    core.outbound("a", "b", "m1")
    core.outbound("a", "b", 2)
    assert core.totals() == {"str": 1, "int": 1}
    assert core.stats.per_link[("a", "b")] == 2
    core.reset_counters()
    assert core.totals() == {}
    assert sum(core.stats.per_link.values()) == 0


def test_volume_counts_estimated_sizes():
    class Sized:
        def estimated_size(self):
            return 7

    stats = LinkStats()
    stats.record_sent("a", "b", Sized())
    stats.record_sent("a", "b", Sized())
    assert stats.volume == {"Sized": 14}


def test_describe_links_orders_by_traffic():
    stats = LinkStats()
    assert stats.describe_links() == "no traffic"
    for _ in range(3):
        stats.record_sent("a", "b", "m")
    stats.record_sent("b", "a", "m")
    assert stats.describe_links() == "a->b: 3, b->a: 1"


def test_describe_tier_links_singles_out_server_traffic():
    stats = LinkStats()
    assert stats.describe_tier_links() == "no tier traffic"
    for _ in range(3):
        stats.record_sent("a", "srv:0", "m")
    stats.record_sent("srv:0", "a", "m")
    stats.record_sent("a", "b", "m")  # client traffic: not a tier link
    assert stats.describe_tier_links() == "tier links a->srv:0: 3, srv:0->a: 1"


def test_describe_links_truncates():
    stats = LinkStats()
    for i in range(9):
        stats.record_sent(f"p{i}", "q", "m")
    text = stats.describe_links(limit=6)
    assert text.endswith("(+3 more)")


def test_repr_mentions_groups_and_restrictions():
    core = core_with("a", "b")
    core.partition([["a"], ["b"]])
    core.restrict("a", ["b"])
    text = repr(core)
    assert "groups=[1, 2]" in text
    assert "'a'" in text
