"""The differential link-contract suite (CO_RFIFO, Figure 3).

Every test here runs three times - once per substrate driver (sim,
async, tcp) - through the ``driver_factory`` fixture of ``conftest``.
The assertions never mention the substrate: per-link FIFO, receiver-side
deduplication, masked drops, the symmetric partition/restrict matrix and
the uniform counters must hold identically everywhere, because they are
implemented exactly once, in :class:`repro.links.LinkCore`.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultModel
from repro.errors import SettleTimeoutError
from repro.net.world import SimWorld
from repro.runtime.transport import AsyncHub

from tests.links.conftest import run_contract


def payloads(received):
    return [message for _src, message in received]


# ----------------------------------------------------------------------
# delivery and per-link FIFO
# ----------------------------------------------------------------------


def test_point_to_point_delivery(driver_factory):
    async def scenario(d):
        await d.start(["a", "b"])
        for i in range(3):
            await d.send("a", "b", f"m{i}")
        await d.drain(lambda: len(d.received["b"]) == 3)
        assert d.received["b"] == [("a", "m0"), ("a", "m1"), ("a", "m2")]
        assert d.received["a"] == []
        assert d.core.totals() == {"str": 3}

    run_contract(driver_factory, scenario)


def test_per_link_fifo(driver_factory):
    async def scenario(d):
        await d.start(["a", "b"])
        expected = [f"m{i:02d}" for i in range(20)]
        for message in expected:
            await d.send("a", "b", message)
        await d.drain(lambda: len(d.received["b"]) == len(expected))
        assert payloads(d.received["b"]) == expected

    run_contract(driver_factory, scenario)


def test_fifo_survives_delay_and_reorder_faults(driver_factory):
    model = FaultModel(delay=1.0, reorder=1.0, jitter=2.0, seed=5)

    async def scenario(d):
        await d.start(["a", "b"])
        expected = [f"m{i:02d}" for i in range(15)]
        for message in expected:
            await d.send("a", "b", message)
        await d.drain(lambda: len(d.received["b"]) == len(expected))
        assert payloads(d.received["b"]) == expected
        assert d.injector.counters["delayed"] == len(expected)
        assert d.injector.counters["reordered"] == len(expected)

    run_contract(driver_factory, scenario, model)


# ----------------------------------------------------------------------
# the fault pipeline: masked drops, deduplicated duplicates
# ----------------------------------------------------------------------


def test_duplicates_occupy_the_wire_but_never_reach_the_endpoint(driver_factory):
    model = FaultModel(duplicate=1.0, seed=3)

    async def scenario(d):
        await d.start(["a", "b"])
        for i in range(5):
            await d.send("a", "b", f"m{i}")
        await d.drain(lambda: d.core.stats.delivered["DuplicateCopy"] == 5)
        # The endpoint saw each message exactly once ...
        assert payloads(d.received["b"]) == [f"m{i}" for i in range(5)]
        # ... but the wire genuinely carried (and counted) both copies,
        # and the receiving side of the core suppressed the second one.
        assert d.core.totals() == {"str": 5, "DuplicateCopy": 5}
        assert d.injector.counters["duplicated"] == 5
        assert d.injector.counters["suppressed"] == 5

    run_contract(driver_factory, scenario, model)


def test_drop_is_masked_as_retransmission_latency(driver_factory):
    model = FaultModel(drop=1.0, seed=11)

    async def scenario(d):
        await d.start(["a", "b"])
        for i in range(3):
            await d.send("a", "b", f"m{i}")
        await d.drain(lambda: len(d.received["b"]) == 3)
        # CO_RFIFO is realised over a lossy wire by retransmission:
        # every "dropped" message still arrives, late, and in order.
        assert payloads(d.received["b"]) == ["m0", "m1", "m2"]
        assert d.injector.counters["dropped"] == 3

    run_contract(driver_factory, scenario, model)


# ----------------------------------------------------------------------
# the partition/reachability matrix
# ----------------------------------------------------------------------


def test_partition_blocks_both_directions(driver_factory):
    async def scenario(d):
        await d.start(["a", "b", "c"])
        d.core.partition([["a"], ["b", "c"]])
        assert not d.core.connected("a", "b")
        assert not d.core.connected("b", "a")
        await d.send("a", "b", "cut1")
        await d.send("b", "a", "cut2")
        await d.send("b", "c", "intra")
        await d.drain(lambda: len(d.received["c"]) == 1)
        assert d.received["a"] == []
        assert d.received["b"] == []
        assert d.received["c"] == [("b", "intra")]

    run_contract(driver_factory, scenario)


def test_unmentioned_processes_join_the_residual_component(driver_factory):
    async def scenario(d):
        await d.start(["a", "b", "c"])
        d.core.partition([["a"]])  # b and c stay in group 0 together
        await d.send("b", "c", "residual")
        await d.send("a", "b", "cut")
        await d.drain(lambda: len(d.received["c"]) == 1)
        assert d.received["c"] == [("b", "residual")]
        assert d.received["b"] == []

    run_contract(driver_factory, scenario)


def test_restrict_is_symmetric(driver_factory):
    async def scenario(d):
        await d.start(["a", "b", "c"])
        d.core.restrict("a", ["c"])
        # a's allowed set excludes b: neither side can reach the other.
        await d.send("a", "b", "blocked")
        await d.send("b", "a", "blocked-too")
        await d.send("a", "c", "ok1")
        await d.send("c", "a", "ok2")
        await d.drain(lambda: len(d.received["c"]) == 1 and len(d.received["a"]) == 1)
        assert d.received["b"] == []
        assert d.received["c"] == [("a", "ok1")]
        assert d.received["a"] == [("c", "ok2")]

    run_contract(driver_factory, scenario)


def test_heal_restores_components_and_lifts_restrictions(driver_factory):
    async def scenario(d):
        await d.start(["a", "b", "c"])
        d.core.partition([["a"], ["b", "c"]])
        d.core.restrict("b", ["c"])
        d.core.heal()
        await d.send("a", "b", "m1")
        await d.send("b", "a", "m2")
        await d.drain(lambda: len(d.received["b"]) == 1 and len(d.received["a"]) == 1)
        assert d.received["b"] == [("a", "m1")]
        assert d.received["a"] == [("b", "m2")]

    run_contract(driver_factory, scenario)


def test_partition_then_heal_regression(driver_factory):
    """The PR 1 regression, phrased uniformly for every substrate.

    The same message *object* travels the same link twice, a partition
    cuts the link, a blocked send must not leak, and after the heal the
    link carries traffic again - with exact delivery counts throughout.
    The original bug (in-flight entries retired by message identity
    instead of by scheduled event) made exactly this count drift.
    """

    async def scenario(d):
        same = "dup"
        await d.start(["a", "b"])
        await d.send("a", "b", same)
        await d.send("a", "b", same)
        await d.drain(lambda: len(d.received["b"]) == 2)
        assert payloads(d.received["b"]) == [same, same]

        d.core.partition([["a"], ["b"]])
        await d.send("a", "b", "blocked")
        await d.drain()
        assert payloads(d.received["b"]) == [same, same]

        d.core.heal()
        await d.send("a", "b", "after")
        await d.drain(lambda: len(d.received["b"]) == 3)
        assert payloads(d.received["b"]) == [same, same, "after"]

    run_contract(driver_factory, scenario)


# ----------------------------------------------------------------------
# uniform counters
# ----------------------------------------------------------------------


def test_totals_and_per_link_counters_are_uniform(driver_factory):
    async def scenario(d):
        await d.start(["a", "b", "c"])
        await d.send("a", "b", "m1")
        await d.send("a", "b", "m2")
        await d.send("b", "c", "m3")
        await d.send("a", "c", 4)
        await d.drain(
            lambda: len(d.received["b"]) == 2 and len(d.received["c"]) == 2
        )
        assert d.core.totals() == {"str": 3, "int": 1}
        assert d.core.stats.per_link[("a", "b")] == 2
        assert d.core.stats.per_link[("b", "c")] == 1
        assert d.core.stats.per_link[("a", "c")] == 1
        d.core.reset_counters()
        assert d.core.totals() == {}
        assert sum(d.core.stats.per_link.values()) == 0

    run_contract(driver_factory, scenario)


# ----------------------------------------------------------------------
# settle-timeout diagnostics (per-link counters in the message)
# ----------------------------------------------------------------------


def test_sim_settle_timeout_reports_busiest_links():
    world = SimWorld(membership="oracle")
    world.add_nodes(["a", "b", "c"])
    world.start()
    with pytest.raises(SettleTimeoutError) as excinfo:
        world.settle(max_events=1)
    assert "busiest links:" in str(excinfo.value)


def test_async_quiesce_timeout_reports_busiest_links():
    import asyncio

    async def scenario():
        hub = AsyncHub(delay=0.2)
        hub.register("a", lambda src, m: None)
        hub.register("b", lambda src, m: None)
        hub.send("a", ["b"], "slow")
        try:
            with pytest.raises(SettleTimeoutError) as excinfo:
                await hub.quiesce(timeout=0.05)
            assert "busiest links:" in str(excinfo.value)
            assert "a->b: 1" in str(excinfo.value)
        finally:
            await hub.close()

    asyncio.run(scenario())
