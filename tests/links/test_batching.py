"""The batching contract: framing may coalesce, semantics may not.

PR "steady-state fast path" lets every substrate coalesce back-to-back
wire copies into batched carriers (shared simulator events, shared hub
wakeups, shared TCP frames).  These tests pin down what batching is NOT
allowed to change, and run verbatim over all three substrates through
the differential harness in ``conftest.py``:

* per-link FIFO holds across batch boundaries;
* faults (duplicates, drops) and the :class:`~repro.links.LinkStats`
  counters apply per *message*, never per batch;
* a partition cut fells a batch atomically - a batch is never split
  into a delivered prefix and a lost suffix.

Unit tests for the pure helpers (``coalesce_copies``,
``BatchAccumulator``, ``MessageBatch`` framing) live at the bottom;
they need no substrate.
"""

from __future__ import annotations

import pickle

from tests.links.conftest import run_contract

from repro.chaos.faults import DuplicateCopy, FaultModel
from repro.links import (
    BATCH_LIMIT,
    BatchAccumulator,
    LinkCore,
    MessageBatch,
    coalesce_copies,
)
from repro.runtime.tcp import encode_batch, encode_frame


def payloads(received):
    return [message for _src, message in received]


# ----------------------------------------------------------------------
# FIFO across batch boundaries
# ----------------------------------------------------------------------


def test_fifo_preserved_across_batch_boundaries(driver_factory):
    """A burst longer than BATCH_LIMIT spans several batches; the
    receiver must still see one unbroken FIFO sequence."""
    count = BATCH_LIMIT * 2 + 5

    async def scenario(driver):
        await driver.start(["a", "b"])
        await driver.send_burst("a", "b", list(range(count)))
        await driver.drain(lambda: len(driver.received["b"]) >= count)
        assert payloads(driver.received["b"]) == list(range(count))

    run_contract(driver_factory, scenario)


def test_fifo_preserved_with_interleaved_senders(driver_factory):
    """Bursts from two senders: each sender's sub-sequence stays FIFO."""

    async def scenario(driver):
        await driver.start(["a", "b", "c"])
        for i in range(6):
            await driver.send("a", "c", ("a", i))
            await driver.send("b", "c", ("b", i))
        await driver.drain(lambda: len(driver.received["c"]) >= 12)
        seen = driver.received["c"]
        for sender in ("a", "b"):
            assert [m for s, m in seen if s == sender] == [
                (sender, i) for i in range(6)
            ]

    run_contract(driver_factory, scenario)


# ----------------------------------------------------------------------
# per-message faults and counters inside a batch
# ----------------------------------------------------------------------


def test_duplicates_applied_per_message_inside_batch(driver_factory):
    """duplicate=1.0: every message of the burst gains its own
    DuplicateCopy on the wire, and the receiver sees each payload once."""
    model = FaultModel(duplicate=1.0, seed=3)

    async def scenario(driver):
        await driver.start(["a", "b"])
        await driver.send_burst("a", "b", [f"m{i}" for i in range(5)])
        await driver.drain(lambda: len(driver.received["b"]) >= 5)
        assert payloads(driver.received["b"]) == [f"m{i}" for i in range(5)]
        # Wire accounting is per message: 5 originals + 5 duplicate copies.
        assert driver.core.stats.sent["str"] == 5
        assert driver.core.stats.sent["DuplicateCopy"] == 5
        # Dedup also happens per copy: every marker died in the core.
        assert driver.core.stats.delivered["DuplicateCopy"] == 5
        assert driver.injector.counters["suppressed"] == 5

    run_contract(driver_factory, scenario, model)


def test_drop_penalty_applied_per_message_inside_batch(driver_factory):
    """drop=1.0: each message of a burst pays its own retransmission
    penalty, yet FIFO holds and nothing is lost or reordered."""
    model = FaultModel(drop=1.0, seed=11)

    async def scenario(driver):
        await driver.start(["a", "b"])
        await driver.send_burst("a", "b", list(range(4)))
        await driver.drain(lambda: len(driver.received["b"]) >= 4)
        assert payloads(driver.received["b"]) == [0, 1, 2, 3]
        assert driver.injector.counters["dropped"] == 4

    run_contract(driver_factory, scenario, model)


def test_stats_count_messages_not_batches(driver_factory):
    """One coalesced burst of N messages counts N sent / N delivered."""
    count = BATCH_LIMIT + 3

    async def scenario(driver):
        await driver.start(["a", "b"])
        await driver.send_burst("a", "b", list(range(count)))
        await driver.drain(lambda: len(driver.received["b"]) >= count)
        assert driver.core.stats.sent["int"] == count
        assert driver.core.stats.delivered["int"] == count
        assert driver.core.stats.per_link[("a", "b")] == count

    run_contract(driver_factory, scenario)


# ----------------------------------------------------------------------
# partition cut mid-batch: atomic
# ----------------------------------------------------------------------


def test_partition_mid_batch_is_atomic(driver_factory):
    """Cut the link while a burst is in flight: the batch lives or dies
    whole.  Substrates legitimately differ in *which* outcome occurs
    (the hub's in-process queues are lossless; the simulator bounces
    in-flight carriers; TCP drops frames that cross the cut) - but none
    may deliver a strict prefix of a batch.
    """
    count = 6

    async def scenario(driver):
        await driver.start(["a", "b"])
        await driver.send_burst("a", "b", list(range(count)))
        # The burst is on the wire (sim: scheduled carriers; tcp: frames
        # possibly in kernel buffers) - cut before it can be consumed.
        driver.core.partition([["a"], ["b"]])
        await driver.drain()
        got = payloads(driver.received["b"])
        assert got in ([], list(range(count))), f"batch split: {got}"
        if not got:
            # Nothing arrived: every message of the batch was accounted
            # as bounced, none silently vanished.
            assert driver.core.stats.bounced["int"] == count

    run_contract(driver_factory, scenario)


# ----------------------------------------------------------------------
# pure helpers: no substrate required
# ----------------------------------------------------------------------


def test_coalesce_copies_groups_zero_delay_runs():
    copies = [("a", 0.0), ("b", 0.0), ("c", 1.5), ("d", 0.0), ("e", 0.0)]
    out = coalesce_copies(copies)
    assert out[0] == (MessageBatch(("a", "b")), 0.0)
    assert out[1] == ("c", 1.5)  # a delayed copy travels alone
    assert out[2] == (MessageBatch(("d", "e")), 0.0)


def test_coalesce_copies_singletons_stay_bare():
    assert coalesce_copies([("a", 0.0)]) == [("a", 0.0)]
    assert coalesce_copies([]) == []


def test_coalesce_copies_respects_limit():
    copies = [(i, 0.0) for i in range(BATCH_LIMIT + 2)]
    out = coalesce_copies(copies)
    assert len(out[0][0].copies) == BATCH_LIMIT
    assert len(out[1][0].copies) == 2
    # Flattening restores the original channel order.
    flat = [c for wire, _extra in out for c in wire.copies]
    assert flat == list(range(BATCH_LIMIT + 2))


def test_batch_accumulator_runs_fault_pipeline_per_message():
    core = LinkCore()
    core.ensure("a")
    core.ensure("b")
    batch = BatchAccumulator(core, "a")
    for i in range(3):
        batch.add("b", i)
    assert core.stats.sent["int"] == 3  # counted at add time, per message
    flushed = batch.flush("b")
    assert flushed == [(MessageBatch((0, 1, 2)), 0.0)]
    assert batch.pending("b") == 0


def test_batch_accumulator_drops_across_cut():
    core = LinkCore()
    core.ensure("a")
    core.ensure("b")
    core.partition([["a"], ["b"]])
    batch = BatchAccumulator(core, "a")
    assert batch.add("b", "x") is False
    assert batch.flush("b") == []


def test_encode_batch_degenerates_to_plain_frame():
    assert encode_batch("a", ["only"]) == encode_frame("a", "only")


def test_encode_batch_roundtrip():
    frame = encode_batch("a", ["x", "y", "z"])
    # strip the 4-byte length prefix and unpickle the body directly
    src, wire = pickle.loads(frame[4:])
    assert src == "a"
    assert isinstance(wire, MessageBatch)
    assert list(wire) == ["x", "y", "z"]


def test_message_batch_pickles_to_its_copies():
    batch = MessageBatch(("p", "q"))
    clone = pickle.loads(pickle.dumps(batch))
    assert clone == batch
    assert clone.copies == ("p", "q")


def test_inbound_batch_dedups_and_counts_per_message():
    core = LinkCore()
    core.ensure("a")
    core.ensure("b")
    copies = ["m1", DuplicateCopy("m1"), "m2"]
    assert core.inbound_batch("a", "b", copies) == ["m1", "m2"]
    assert core.stats.delivered["str"] == 2
    assert core.stats.delivered["DuplicateCopy"] == 1


def test_inbound_batch_topology_check_is_atomic():
    core = LinkCore()
    core.ensure("a")
    core.ensure("b")
    core.partition([["a"], ["b"]])
    assert core.inbound_batch("a", "b", ["m1", "m2"], check_topology=True) == []
    assert core.stats.bounced["str"] == 2
    assert core.stats.delivered["str"] == 0
