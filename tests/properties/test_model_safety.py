"""Hypothesis-driven adversarial model checking.

Hypothesis chooses the membership behaviour (which groups change, when,
whether views reach all members) and the scheduler interleaving; every
safety property, every invariant of Sections 6-7, and the refinement
mappings must hold on the resulting execution.  This is the strongest
evidence in the suite: it subjects the algorithm to schedules no
deployment test would produce.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking.properties import check_liveness
from repro.checking.refinement import attach_refinement_checkers
from repro.harness import ModelHarness

PROCS = "abcd"

membership_steps = st.lists(
    st.tuples(
        st.sampled_from(["change", "view", "partition"]),
        st.sets(st.sampled_from(list(PROCS)), min_size=1),
        st.integers(min_value=0, max_value=25),  # scheduler steps afterwards
    ),
    max_size=5,
)

MODEL_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drive(harness, scheduler, steps):
    for kind, group, budget in steps:
        if kind == "change":
            actions = harness.driver.start_change_actions(group)
        elif kind == "view":
            _view, actions = harness.driver.form_view(group)
        else:
            rest = set(PROCS) - group
            groups = [group] + ([rest] if rest else [])
            _views, actions = harness.driver.partitioned_views(groups)
        for action in actions:
            if harness.mbrshp.is_enabled(action):
                harness.system.execute(harness.mbrshp, action)
        for _ in range(budget):
            if not scheduler.step():
                break


class TestAdversarialSafety:
    @MODEL_SETTINGS
    @given(steps=membership_steps, seed=st.integers(min_value=0, max_value=2**16))
    def test_safety_invariants_and_refinements(self, steps, seed):
        harness = ModelHarness(
            PROCS, seed=seed, scripts={p: [f"{p}{i}" for i in range(2)] for p in PROCS}
        )
        scheduler = harness.scheduler("random", seed=seed)
        scheduler.add_hook(harness.invariant_hook())
        attach_refinement_checkers(scheduler, harness.world)
        drive(harness, scheduler, steps)
        scheduler.run(max_steps=3_000)
        harness.check_safety()

    @MODEL_SETTINGS
    @given(steps=membership_steps, seed=st.integers(min_value=0, max_value=2**16))
    def test_eventual_stability_implies_liveness(self, steps, seed):
        harness = ModelHarness(
            PROCS, seed=seed, scripts={p: [f"{p}0"] for p in PROCS}
        )
        scheduler = harness.scheduler("fair", seed=seed)
        drive(harness, scheduler, steps)
        final = harness.form_view(PROCS)  # stabilise
        for p in PROCS:
            harness.clients[p].queue(f"{p}-stable")
        scheduler.run(max_steps=120_000)
        assert harness.system.quiescent()
        harness.check_safety()
        check_liveness(harness.gcs_trace(), final)

    @MODEL_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_random_driver_behaviour_is_always_safe(self, seed):
        harness = ModelHarness(
            PROCS, seed=seed, scripts={p: [f"{p}{i}" for i in range(2)] for p in PROCS}
        )
        scheduler = harness.scheduler("random", seed=seed)
        scheduler.add_hook(harness.invariant_hook())
        for action in harness.driver.random_behaviour(4):
            if harness.mbrshp.is_enabled(action):
                harness.system.execute(harness.mbrshp, action)
            scheduler.run(max_steps=17)
        scheduler.run(max_steps=4_000)
        harness.check_safety()
