"""Hypothesis properties over the simulated deployment.

Random fault schedules - partitions, heals, crashes, recoveries, and
traffic at arbitrary instants - must never violate a safety property, in
either membership mode, with either forwarding strategy, with or without
the compact-sync and two-tier options.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking import check_all_safety
from repro.core import MinCopiesStrategy, SimpleStrategy
from repro.net import ConstantLatency, SimWorld, UniformLatency
from repro.net.hierarchy import TwoTierOverlay, balanced_groups

PIDS = [f"p{i}" for i in range(5)]

SIM_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

fault_steps = st.lists(
    st.tuples(
        st.sampled_from(["partition", "heal", "crash", "recover", "send", "run"]),
        st.sets(st.sampled_from(PIDS), min_size=1),
        st.floats(min_value=0.1, max_value=4.0),
    ),
    max_size=8,
)


def drive(world, steps):
    crashed = set()
    for kind, group, delay in steps:
        if kind == "partition":
            rest = [p for p in PIDS if p not in group]
            world.partition([sorted(group)] + ([rest] if rest else []))
        elif kind == "heal":
            world.heal()
        elif kind == "crash":
            victim = sorted(group)[0]
            if victim not in crashed:
                world.crash(victim)
                crashed.add(victim)
        elif kind == "recover":
            victim = sorted(group)[0]
            if victim in crashed:
                world.recover(victim)
                crashed.discard(victim)
        elif kind == "send":
            for pid in sorted(group):
                node = world.nodes[pid]
                # respect the Figure 12 client contract: no sends while
                # the end-point has us blocked for a view change
                if pid not in crashed and not node.runner.blocked:
                    node.send(f"{pid}@{world.now():.1f}")
        world.run_until(world.now() + delay)
    world.heal()
    for pid in sorted(crashed):
        world.recover(pid)
    world.run(max_events=500_000)


class TestSimulatedFaultSchedules:
    @SIM_SETTINGS
    @given(steps=fault_steps, jitter=st.booleans(), compact=st.booleans())
    def test_oracle_mode_safety(self, steps, jitter, compact):
        latency = UniformLatency(0.2, 2.0, seed=1) if jitter else ConstantLatency(1.0)
        world = SimWorld(
            latency=latency,
            membership="oracle",
            round_duration=2.0,
            compact_syncs=compact,
        )
        world.add_nodes(PIDS)
        world.start()
        world.run()
        drive(world, steps)
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))

    @SIM_SETTINGS
    @given(steps=fault_steps, strategy=st.sampled_from([SimpleStrategy(), MinCopiesStrategy()]))
    def test_forwarding_strategies_safety(self, steps, strategy):
        world = SimWorld(
            latency=UniformLatency(0.3, 1.5, seed=7),
            membership="oracle",
            round_duration=2.0,
            forwarding=strategy,
        )
        world.add_nodes(PIDS)
        world.start()
        world.run()
        drive(world, steps)
        check_all_safety(world.trace, list(world.nodes))

    @SIM_SETTINGS
    @given(steps=fault_steps)
    def test_two_tier_overlay_safety(self, steps):
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
        world.add_nodes(PIDS)
        TwoTierOverlay(world, balanced_groups(PIDS, 2))
        world.start()
        world.run()
        # the overlay assumes stable leaders: restrict faults to non-leaders
        leaders = set(balanced_groups(PIDS, 2))
        safe_steps = [
            (kind, {p for p in group if p not in leaders} or {sorted(group)[0]}, delay)
            if kind in ("crash", "recover") else (kind, group, delay)
            for kind, group, delay in steps
            if not (kind in ("crash", "recover") and set(group) <= leaders)
        ]
        drive(world, safe_steps)
        check_all_safety(world.trace, list(world.nodes))


class TestOrderingUnderFaults:
    @SIM_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_total_order_agreement_after_churn(self, seed):
        from repro.order import TotalOrderNode

        world = SimWorld(
            latency=UniformLatency(0.2, 2.0, seed=seed),
            membership="oracle",
            round_duration=2.0,
        )
        nodes = world.add_nodes(PIDS)
        ordered = [TotalOrderNode(node) for node in nodes]
        world.start()
        world.run()
        import random

        rng = random.Random(seed)
        for wave in range(3):
            for node in ordered:
                node.broadcast(f"{node.pid}-{wave}")
            if rng.random() < 0.5:
                world.crash(PIDS[-1])
                world.run()
                world.recover(PIDS[-1])
            world.run()
        world.run()
        victim = PIDS[-1]
        survivors = [o for o in ordered if o.pid != victim]
        sequences = {tuple(o.total_order()) for o in survivors}
        # continuously-live members agree on one total order...
        assert len(sequences) == 1
        # ...and the churned node (which missed a segment while down, and
        # restarted its application history on recovery) sees a
        # subsequence of that common order - never a contradiction.
        common = list(sequences.pop())
        churned = [o for o in ordered if o.pid == victim][0].total_order()
        iterator = iter(common)
        assert all(any(entry == other for other in iterator) for entry in churned)
