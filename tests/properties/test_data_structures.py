"""Hypothesis property tests for the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._collections import MessageLog, frozendict
from repro.types import ViewId, cut_max, make_cut

keys = st.text(alphabet="abcdef", min_size=1, max_size=3)
small_ints = st.integers(min_value=0, max_value=20)


class TestFrozendictLaws:
    @given(st.dictionaries(keys, small_ints))
    def test_equality_and_hash_agree_with_dict(self, data):
        assert frozendict(data) == frozendict(dict(data))
        assert hash(frozendict(data)) == hash(frozendict(dict(data)))

    @given(st.dictionaries(keys, small_ints), keys, small_ints)
    def test_set_is_persistent(self, data, key, value):
        original = frozendict(data)
        updated = original.set(key, value)
        assert updated[key] == value
        assert original == frozendict(data)  # untouched

    @given(st.dictionaries(keys, small_ints), keys)
    def test_discard_removes_only_that_key(self, data, key):
        original = frozendict(data)
        shrunk = original.discard(key)
        assert key not in shrunk
        assert {k: v for k, v in original.items() if k != key} == dict(shrunk)


class TestMessageLogLaws:
    @given(st.lists(st.integers(), max_size=30))
    def test_append_preserves_order_and_prefix(self, items):
        log = MessageLog()
        for item in items:
            log.append(item)
        assert log.prefix_items() == items
        assert log.longest_prefix() == len(items)

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=15), st.integers()), max_size=30))
    def test_put_prefix_is_maximal_gap_free_run(self, writes):
        log = MessageLog()
        written = {}
        for index, value in writes:
            log.put(index, value)
            written.setdefault(index, value)  # first write wins
        prefix = log.longest_prefix()
        for i in range(1, prefix + 1):
            assert log.has(i)
        assert not log.has(prefix + 1)
        for index, value in written.items():
            assert log.get(index) == value

    @given(st.lists(st.integers(min_value=1, max_value=10), max_size=20))
    def test_prefix_monotone_under_puts(self, indices):
        log = MessageLog()
        previous = 0
        for index in indices:
            log.put(index, index)
            assert log.longest_prefix() >= previous
            previous = log.longest_prefix()


class TestViewIdLaws:
    vids = st.builds(ViewId, st.integers(min_value=0, max_value=100), st.text(alphabet="xy", max_size=2))

    @given(vids, vids)
    def test_total_order(self, a, b):
        assert (a < b) or (b < a) or (a == b)

    @given(vids, vids, vids)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(vids)
    def test_next_strictly_increases(self, vid):
        assert vid < vid.next()


class TestCutLaws:
    cuts = st.dictionaries(keys, small_ints)

    @given(st.lists(cuts, min_size=1, max_size=5), st.sets(keys, max_size=5))
    def test_cut_max_dominates_every_input(self, raw_cuts, domain):
        cuts = [make_cut(c) for c in raw_cuts]
        merged = cut_max(cuts, domain)
        for cut in cuts:
            for q in domain:
                assert merged[q] >= cut.get(q, 0)

    @given(cuts, st.sets(keys, max_size=5))
    def test_cut_max_idempotent(self, raw, domain):
        cut = make_cut(raw)
        merged = cut_max([cut, cut], domain)
        assert merged == cut_max([cut], domain)
