"""Hypothesis properties of the membership-server protocol.

Random schedules of server-tier partitions, heals, client churn, and
client crashes must keep every client's notice stream compliant with the
MBRSHP specification (Figure 2), and a final stable period must converge
every reachable client onto one identical view.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking.events import MbrshpStartChangeEvent, MbrshpViewEvent
from repro.ioa import Action
from repro.net import ConstantLatency, SimWorld
from repro.spec.mbrshp import MbrshpSpec

CLIENTS = [f"c{i}" for i in range(6)]
SERVERS = ["srv:0", "srv:1"]

MEMBERSHIP_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

events = st.lists(
    st.tuples(
        st.sampled_from(["split", "heal", "crash", "recover"]),
        st.integers(min_value=0, max_value=len(CLIENTS) - 1),
        st.floats(min_value=0.5, max_value=3.0),
    ),
    max_size=6,
)


def replay_against_spec(world):
    spec = MbrshpSpec(list(world.nodes))
    for event in world.trace:
        if isinstance(event, MbrshpStartChangeEvent):
            action = Action("mbrshp.start_change", (event.proc, event.cid, event.members))
        elif isinstance(event, MbrshpViewEvent):
            action = Action("mbrshp.view", (event.proc, event.view))
        else:
            continue
        assert spec.is_enabled(action), f"MBRSHP violation: {action!r}"
        spec.apply(action)


def server_groups(world):
    by_server = {sid: [sid] for sid in SERVERS}
    for pid, node in world.nodes.items():
        by_server[node.home_server].append(pid)
    return list(by_server.values())


class TestServerMembershipUnderChurn:
    @MEMBERSHIP_SETTINGS
    @given(schedule=events)
    def test_spec_compliance_and_convergence(self, schedule):
        world = SimWorld(
            latency=ConstantLatency(1.0), membership="servers", servers=len(SERVERS)
        )
        world.add_nodes(CLIENTS)
        world.start()
        world.run(max_events=300_000)
        crashed = set()
        for kind, index, delay in schedule:
            victim = CLIENTS[index]
            if kind == "split":
                world.partition(server_groups(world))
            elif kind == "heal":
                world.heal()
            elif kind == "crash" and victim not in crashed:
                world.crash(victim)
                crashed.add(victim)
            elif kind == "recover" and victim in crashed:
                world.recover(victim)
                crashed.discard(victim)
            world.run_until(world.now() + delay)
        world.heal()
        for victim in sorted(crashed):
            world.recover(victim)
        world.run(max_events=500_000)

        replay_against_spec(world)
        views = {node.current_view for node in world.nodes.values()}
        assert len(views) == 1, views
        assert next(iter(views)).members == set(CLIENTS)

    @MEMBERSHIP_SETTINGS
    @given(schedule=events)
    def test_gcs_safety_over_server_membership(self, schedule):
        from repro.checking import check_all_safety

        world = SimWorld(
            latency=ConstantLatency(1.0), membership="servers", servers=len(SERVERS)
        )
        world.add_nodes(CLIENTS)
        world.start()
        world.run(max_events=300_000)
        crashed = set()
        for kind, index, delay in schedule:
            victim = CLIENTS[index]
            if kind == "split":
                world.partition(server_groups(world))
            elif kind == "heal":
                world.heal()
            elif kind == "crash" and victim not in crashed:
                world.crash(victim)
                crashed.add(victim)
            elif kind == "recover" and victim in crashed:
                world.recover(victim)
                crashed.discard(victim)
            for pid, node in world.nodes.items():
                if pid not in crashed and not node.runner.blocked:
                    node.send(f"{pid}@{world.now():.1f}")
            world.run_until(world.now() + delay)
        world.heal()
        for victim in sorted(crashed):
            world.recover(victim)
        world.run(max_events=500_000)
        check_all_safety(world.trace, list(world.nodes))
