"""Differential property: the incremental enabled-set cache is exact.

Hypothesis drives the full Figure 8 model (strict-mode end-points)
through arbitrary interleavings of scheduler steps, membership behaviour,
crashes/recoveries, partitions, out-of-band client queueing and direct
``reset_state`` calls.  After every executed step (via the validation
hook) and after every environment disturbance (explicitly), the cached
enabled set must equal the reflective no-cache oracle - same
(component, action) pairs, same order.  This is what keeps seeded
schedules replayable: ``rng.choice`` sees the identical list either way.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import ModelHarness
from repro.ioa import Action

PROCS = "abc"

ops = st.lists(
    st.one_of(
        st.tuples(st.just("steps"), st.integers(min_value=1, max_value=12)),
        st.tuples(st.just("form_view"), st.sets(st.sampled_from(list(PROCS)), min_size=1)),
        st.tuples(st.just("start_change"), st.sets(st.sampled_from(list(PROCS)), min_size=1)),
        st.tuples(st.just("partition"), st.sets(st.sampled_from(list(PROCS)), min_size=1)),
        st.tuples(st.just("crash"), st.sampled_from(list(PROCS))),
        st.tuples(st.just("recover"), st.sampled_from(list(PROCS))),
        st.tuples(st.just("queue"), st.sampled_from(list(PROCS))),
        st.tuples(st.just("reset"), st.sampled_from(list(PROCS))),
    ),
    min_size=1,
    max_size=8,
)

CACHE_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_cache_exact(harness):
    cached = [(c.name, a) for c, a in harness.system.enabled_actions()]
    naive = [(c.name, a) for c, a in harness.system.naive_enabled_actions()]
    assert cached == naive


def apply_op(harness, op):
    kind, arg = op
    if kind == "form_view":
        harness.form_view(arg)
    elif kind == "start_change":
        harness.inject_membership(
            a
            for a in harness.driver.start_change_actions(arg)
            if harness.mbrshp.is_enabled(a)
        )
    elif kind == "partition":
        rest = set(PROCS) - arg
        groups = [arg] + ([rest] if rest else [])
        _views, actions = harness.driver.partitioned_views(groups)
        harness.inject_membership(
            a for a in actions if harness.mbrshp.is_enabled(a)
        )
    elif kind == "crash":
        harness.system.inject(Action("crash", (arg,)))
    elif kind == "recover":
        harness.system.inject(Action("recover", (arg,)))
    elif kind == "queue":
        harness.clients[arg].queue(f"extra-{arg}")
    elif kind == "reset":
        harness.endpoints[arg].reset_state()


class TestEnabledCacheDifferential:
    @CACHE_SETTINGS
    @given(
        ops=ops,
        seed=st.integers(min_value=0, max_value=2**16),
        kind=st.sampled_from(["random", "fair"]),
    )
    def test_cached_enabled_sets_match_oracle(self, ops, seed, kind):
        harness = ModelHarness(
            PROCS, seed=seed, scripts={p: [f"{p}0"] for p in PROCS}
        )
        # The hook re-checks cache == oracle after *every* executed step.
        scheduler = harness.scheduler(kind, validate_cache=True)
        for op in ops:
            if op[0] == "steps":
                for _ in range(op[1]):
                    if not scheduler.step():
                        break
            else:
                apply_op(harness, op)
                assert_cache_exact(harness)
        assert_cache_exact(harness)

    @CACHE_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_seed_stable_across_cached_and_fresh_runs(self, seed):
        """Two identically-seeded harnesses take identical steps: the
        cache cannot perturb scheduling decisions."""
        traces = []
        for _ in range(2):
            harness = ModelHarness(
                PROCS, seed=seed, scripts={p: [f"{p}0", f"{p}1"] for p in PROCS}
            )
            harness.form_view(PROCS)
            recorded = []
            scheduler = harness.scheduler("random")
            scheduler.add_hook(lambda _s, o, a, rec=recorded: rec.append((o.name, a)))
            scheduler.run(max_steps=200)
            traces.append(recorded)
        assert traces[0] == traces[1]
