"""The REPRO_SETTLE_TIMEOUT environment knob and timeout diagnostics."""

import pytest

from repro.errors import SettleTimeoutError
from repro.runtime.settle import DEFAULT_TIMEOUT, ENV_TIMEOUT, settle_timeout


class TestSettleTimeoutEnv:
    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_TIMEOUT, raising=False)
        assert settle_timeout() == DEFAULT_TIMEOUT
        assert settle_timeout(2.5) == 2.5

    def test_env_overrides_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "42.5")
        assert settle_timeout() == 42.5
        assert settle_timeout(2.5) == 42.5

    def test_empty_env_means_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "")
        assert settle_timeout(3.0) == 3.0

    def test_read_at_call_time(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "1.0")
        assert settle_timeout() == 1.0
        monkeypatch.setenv(ENV_TIMEOUT, "2.0")
        assert settle_timeout() == 2.0

    @pytest.mark.parametrize("bad", ["soon", "0", "-3"])
    def test_bad_values_rejected_loudly(self, monkeypatch, bad):
        monkeypatch.setenv(ENV_TIMEOUT, bad)
        with pytest.raises(ValueError, match=ENV_TIMEOUT):
            settle_timeout()


class TestSettleTimeoutError:
    def test_schedule_lands_in_message_and_attribute(self):
        err = SettleTimeoutError("stuck", schedule="seed=7 pending_ops=['settle()']")
        assert err.schedule == "seed=7 pending_ops=['settle()']"
        assert "pending fault schedule: seed=7" in str(err)

    def test_without_schedule(self):
        err = SettleTimeoutError("stuck")
        assert err.schedule is None
        assert str(err) == "stuck"
