"""Partition and heal on the asyncio cluster."""

import asyncio

import pytest

from repro.checking import check_all_safety
from repro.runtime import AsyncCluster, Delivery


def run(coro):
    return asyncio.run(coro)


def drain(node):
    events = []
    while not node.events_queue.empty():
        events.append(node.events_queue.get_nowait())
    return events


def test_partition_isolates_islands():
    async def scenario():
        async with AsyncCluster(record_trace=True) as cluster:
            a, b, c, d = cluster.add_nodes(["a", "b", "c", "d"])
            await cluster.start()
            views = await cluster.partition([["a", "b"], ["c", "d"]])
            assert views[0].members == {"a", "b"}
            assert views[1].members == {"c", "d"}
            await a.send("left only")
            await c.send("right only")
            await cluster.quiesce()
            left = [e.payload for e in drain(b) if isinstance(e, Delivery)]
            right = [e.payload for e in drain(d) if isinstance(e, Delivery)]
            assert "left only" in left and "right only" not in left
            assert "right only" in right and "left only" not in right
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def test_heal_restores_full_group():
    async def scenario():
        async with AsyncCluster(record_trace=True) as cluster:
            nodes = cluster.add_nodes(["a", "b", "c", "d"])
            await cluster.start()
            await cluster.partition([["a", "b"], ["c", "d"]])
            merged = await cluster.heal()
            assert merged.members == {"a", "b", "c", "d"}
            await nodes[0].send("back together")
            await cluster.quiesce()
            for node in nodes[1:]:
                payloads = [e.payload for e in drain(node) if isinstance(e, Delivery)]
                assert "back together" in payloads
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def test_transitional_sets_reflect_partition_history():
    async def scenario():
        async with AsyncCluster() as cluster:
            a, b, c, d = cluster.add_nodes(["a", "b", "c", "d"])
            await cluster.start()
            await cluster.partition([["a", "b"], ["c", "d"]])
            merged = await cluster.heal()
            change = await a.wait_for_view(lambda v: v == merged, timeout=5.0)
            assert change.transitional == {"a", "b"}

    run(scenario())


def test_send_waits_while_blocked():
    async def scenario():
        async with AsyncCluster() as cluster:
            a, b = cluster.add_nodes(["a", "b"])
            await cluster.start()
            # begin a change but withhold the view, so a is blocked
            cids = {"a": 901, "b": 902}
            for pid, cid in cids.items():
                cluster.nodes[pid].membership_start_change(cid, {"a", "b"})
            await asyncio.sleep(0.02)
            assert a.runner.blocked
            send_task = asyncio.create_task(a.send("queued until view"))
            await asyncio.sleep(0.02)
            assert not send_task.done()  # waiting, per the Figure 12 contract
            from repro._collections import frozendict
            from repro.types import View, ViewId

            view = View(ViewId(50), frozenset({"a", "b"}), frozendict(cids))
            for pid in ("a", "b"):
                cluster.nodes[pid].membership_view(view)
            await asyncio.wait_for(send_task, 2.0)
            await cluster.quiesce()
            payloads = [e.payload for e in drain(b) if isinstance(e, Delivery)]
            assert "queued until view" in payloads

    run(scenario())
