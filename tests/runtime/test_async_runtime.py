"""Tests for the asyncio runtime (hub, node, cluster)."""

import asyncio

import pytest

from repro.checking import check_all_safety
from repro.runtime import AsyncCluster, Delivery, ViewChange


def run(coro):
    return asyncio.run(coro)


def test_cluster_initial_view_and_multicast():
    async def scenario():
        async with AsyncCluster(record_trace=True) as cluster:
            nodes = cluster.add_nodes(["a", "b", "c"])
            view = await cluster.start()
            assert view.members == {"a", "b", "c"}
            await nodes[0].send("hello")
            await cluster.quiesce()
            for node in nodes:
                events = drain_events(node)
                assert Delivery("a", "hello") in events
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def drain_events(node):
    events = []
    while not node.events_queue.empty():
        events.append(node.events_queue.get_nowait())
    return events


def test_view_change_event_carries_transitional_set():
    async def scenario():
        async with AsyncCluster() as cluster:
            nodes = cluster.add_nodes(["a", "b"])
            view = await cluster.start()
            events = drain_events(nodes[0])
            changes = [e for e in events if isinstance(e, ViewChange)]
            assert changes and changes[0].view == view
            assert changes[0].transitional == {"a"}

    run(scenario())


def test_fifo_order_preserved():
    async def scenario():
        async with AsyncCluster() as cluster:
            a, b = cluster.add_nodes(["a", "b"])
            await cluster.start()
            for i in range(20):
                await a.send(i)
            await cluster.quiesce()
            got = [e.payload for e in drain_events(b) if isinstance(e, Delivery)]
            assert got == list(range(20))

    run(scenario())


def test_reconfigure_blocks_and_unblocks_senders():
    async def scenario():
        async with AsyncCluster(record_trace=True) as cluster:
            nodes = cluster.add_nodes(["a", "b", "c"])
            await cluster.start()
            await nodes[0].send("before")
            v2 = await cluster.reconfigure(["a", "b"])
            assert v2.members == {"a", "b"}
            await nodes[0].send("after")
            await cluster.quiesce()
            check_all_safety(cluster.trace, list(cluster.nodes))
            got_b = [e.payload for e in drain_events(nodes[1]) if isinstance(e, Delivery)]
            assert got_b == ["before", "after"]
            got_c = [e.payload for e in drain_events(nodes[2]) if isinstance(e, Delivery)]
            assert got_c == ["before"]

    run(scenario())


def test_join_after_start():
    async def scenario():
        async with AsyncCluster(record_trace=True) as cluster:
            cluster.add_nodes(["a", "b"])
            await cluster.start()
            late = cluster.add_node("late")
            view = await cluster.reconfigure(["a", "b", "late"])
            assert "late" in view.members
            await late.send("i made it")
            await cluster.quiesce()
            check_all_safety(cluster.trace, list(cluster.nodes))
            got = [e.payload for e in drain_events(cluster.node("a")) if isinstance(e, Delivery)]
            assert "i made it" in got

    run(scenario())


def test_delayed_hub_still_safe():
    async def scenario():
        async with AsyncCluster(delay=0.003, record_trace=True) as cluster:
            nodes = cluster.add_nodes(["a", "b", "c"])
            await cluster.start()
            for node in nodes:
                await node.send(f"from {node.pid}")
            await cluster.quiesce()
            await cluster.reconfigure(["a", "c"])
            await cluster.quiesce()
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def test_next_event_timeout():
    async def scenario():
        async with AsyncCluster() as cluster:
            a, _b = cluster.add_nodes(["a", "b"])
            await cluster.start()
            drain_events(a)
            with pytest.raises(asyncio.TimeoutError):
                await a.next_event(timeout=0.05)

    run(scenario())


def test_duplicate_node_rejected():
    async def scenario():
        async with AsyncCluster() as cluster:
            cluster.add_node("a")
            with pytest.raises(ValueError):
                cluster.add_node("a")

    run(scenario())
