"""End-to-end GCS over real loopback TCP sockets."""

import asyncio

import pytest

from repro.checking import check_all_safety
from repro.runtime.node import Delivery, ViewChange
from repro.runtime.tcp_cluster import TcpCluster


def run(coro):
    return asyncio.run(coro)


async def collect_deliveries(node, count, timeout=5.0):
    got = []
    while len(got) < count:
        event = await node.next_event(timeout)
        if isinstance(event, Delivery):
            got.append(event)
    return got


def test_view_and_multicast_over_sockets():
    async def scenario():
        async with TcpCluster(record_trace=True) as cluster:
            a, b, c = await cluster.add_nodes(["a", "b", "c"])
            view = await cluster.start()
            assert view.members == {"a", "b", "c"}
            await a.send("over real sockets")
            deliveries = await collect_deliveries(b, 1)
            assert deliveries[0] == Delivery("a", "over real sockets")
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def test_fifo_order_over_sockets():
    async def scenario():
        async with TcpCluster() as cluster:
            a, b = await cluster.add_nodes(["a", "b"])
            await cluster.start()
            for i in range(10):
                await a.send(i)
            deliveries = await collect_deliveries(b, 10)
            assert [d.payload for d in deliveries] == list(range(10))

    run(scenario())


def test_reconfiguration_over_sockets():
    async def scenario():
        async with TcpCluster(record_trace=True) as cluster:
            a, b, c = await cluster.add_nodes(["a", "b", "c"])
            await cluster.start()
            await a.send("before")
            v2 = await cluster.reconfigure(["a", "b"])
            assert v2.members == {"a", "b"}
            await a.send("after")
            deliveries = await collect_deliveries(b, 2)
            assert [d.payload for d in deliveries] == ["before", "after"]
            check_all_safety(cluster.trace, list(cluster.nodes))

    run(scenario())


def test_view_change_event_over_sockets():
    async def scenario():
        async with TcpCluster() as cluster:
            (a,) = await cluster.add_nodes(["a"])
            view = await cluster.start()
            event = await a.next_event()
            assert isinstance(event, ViewChange)
            assert event.view == view
            assert event.transitional == {"a"}

    run(scenario())
