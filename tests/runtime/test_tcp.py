"""Tests for the TCP transport (loopback only)."""

import asyncio

import pytest

from repro.core.messages import AppMsg, ViewMsg
from repro.errors import TransportError
from repro.runtime.tcp import TcpTransport, encode_frame
from repro.types import make_view


def run(coro):
    return asyncio.run(coro)


def test_frame_roundtrip_via_sockets():
    async def scenario():
        received = asyncio.Queue()
        server = TcpTransport("b", lambda src, m: received.put_nowait((src, m)))
        await server.start()
        client = TcpTransport("a", lambda src, m: None)
        client.set_peers({"b": (server.host, server.port)})
        view = make_view(1, ["a", "b"])
        await client.send(["b"], ViewMsg(view))
        await client.send(["b"], AppMsg("payload", view, 1))
        first = await asyncio.wait_for(received.get(), 2)
        second = await asyncio.wait_for(received.get(), 2)
        assert first == ("a", ViewMsg(view))
        assert second[1].payload == "payload"
        await client.close()
        await server.close()

    run(scenario())


def test_send_to_unknown_peer_is_dropped():
    async def scenario():
        client = TcpTransport("a", lambda src, m: None)
        await client.start()
        await client.send(["ghost"], "m")  # no address: suffix lost, no error
        await client.close()

    run(scenario())


def test_send_to_self_skipped():
    async def scenario():
        inbox = []
        node = TcpTransport("a", lambda src, m: inbox.append(m))
        await node.start()
        node.set_peers({"a": (node.host, node.port)})
        await node.send(["a"], "loop")
        await asyncio.sleep(0.05)
        assert inbox == []
        await node.close()

    run(scenario())


def test_oversized_frame_rejected():
    big = "x" * (70 * 1024 * 1024)
    with pytest.raises(TransportError):
        encode_frame("a", big)


def test_multiple_receivers():
    async def scenario():
        boxes = {"b": asyncio.Queue(), "c": asyncio.Queue()}
        servers = {}
        for pid, box in boxes.items():
            servers[pid] = TcpTransport(pid, lambda src, m, q=box: q.put_nowait(m))
            await servers[pid].start()
        client = TcpTransport("a", lambda src, m: None)
        client.set_peers({pid: (t.host, t.port) for pid, t in servers.items()})
        await client.send(["b", "c"], "fanout")
        for box in boxes.values():
            assert await asyncio.wait_for(box.get(), 2) == "fanout"
        await client.close()
        for server in servers.values():
            await server.close()

    run(scenario())
