"""Unit tests for the model harness and its trace conversion."""

import pytest

from repro.checking.events import (
    BlockEvent,
    BlockOkEvent,
    DeliverEvent,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    SendEvent,
    ViewEvent,
)
from repro.harness import ModelHarness, ioa_trace_to_gcs_trace
from repro.ioa import Action, ActionKind, Trace


class TestTraceConversion:
    def test_all_event_kinds_converted(self):
        from repro.types import make_view

        v = make_view(1, ["a", "b"], {"a": 1, "b": 1})
        trace = Trace()
        trace.record(Action("mbrshp.start_change", ("a", 1, frozenset({"a"}))), "m", ActionKind.OUTPUT)
        trace.record(Action("mbrshp.view", ("a", v)), "m", ActionKind.OUTPUT)
        trace.record(Action("block", ("a",)), "ep", ActionKind.OUTPUT)
        trace.record(Action("block_ok", ("a",)), "cl", ActionKind.OUTPUT)
        trace.record(Action("send", ("a", "p")), "cl", ActionKind.OUTPUT)
        trace.record(Action("view", ("a", v, frozenset({"a"}))), "ep", ActionKind.OUTPUT)
        trace.record(Action("deliver", ("a", "a", "p")), "ep", ActionKind.OUTPUT)
        trace.record(Action("crash", ("a",)), "env", ActionKind.INPUT)
        trace.record(Action("recover", ("a",)), "env", ActionKind.INPUT)
        converted = ioa_trace_to_gcs_trace(trace)
        kinds = [type(e).__name__ for e in converted]
        assert kinds == [
            "MbrshpStartChangeEvent", "MbrshpViewEvent", "BlockEvent",
            "BlockOkEvent", "SendEvent", "ViewEvent", "DeliverEvent",
            "CrashEvent", "RecoverEvent",
        ]

    def test_internal_bookkeeping_actions_skipped(self):
        trace = Trace()
        trace.record(Action("co_rfifo.send", ("a", frozenset(), "m")), "ep", ActionKind.OUTPUT)
        trace.record(Action("co_rfifo.reliable", ("a", frozenset())), "ep", ActionKind.OUTPUT)
        assert len(ioa_trace_to_gcs_trace(trace)) == 0

    def test_event_times_are_step_indices(self):
        trace = Trace()
        trace.record(Action("send", ("a", "x")), "cl", ActionKind.OUTPUT)
        trace.record(Action("send", ("a", "y")), "cl", ActionKind.OUTPUT)
        converted = ioa_trace_to_gcs_trace(trace)
        assert [e.time for e in converted] == [0.0, 1.0]


class TestHarness:
    def test_components_assembled(self):
        harness = ModelHarness("ab", seed=0)
        names = {component.name for component in harness.system.components}
        assert "mbrshp" in names and "co_rfifo" in names
        assert {"GcsEndpoint:a", "GcsEndpoint:b"} <= names
        assert {"client:a", "client:b"} <= names

    def test_scheduler_kinds(self):
        harness = ModelHarness("ab", seed=0)
        from repro.ioa import FairScheduler, RandomScheduler

        assert isinstance(harness.scheduler("random"), RandomScheduler)
        assert isinstance(harness.scheduler("fair"), FairScheduler)
        with pytest.raises(ValueError):
            harness.scheduler("chaotic")

    def test_form_view_returns_applied_view(self):
        harness = ModelHarness("ab", seed=0)
        view = harness.form_view("ab")
        assert harness.mbrshp.mbrshp_view["a"] == view

    def test_views_delivered_helper(self):
        harness = ModelHarness("ab", seed=0)
        view = harness.form_view("ab")
        harness.run_to_quiescence()
        assert harness.views_delivered("a") == [view]

    def test_run_to_quiescence_with_hooks(self):
        harness = ModelHarness("ab", seed=0)
        harness.form_view("ab")
        calls = []
        harness.run_to_quiescence(hooks=[lambda *a: calls.append(1)])
        assert calls

    def test_check_mbrshp_accepts_spec_generated_behaviour(self):
        harness = ModelHarness("abc", seed=3)
        harness.form_view("abc")
        harness.run_to_quiescence()
        harness.form_view("ab")
        harness.run_to_quiescence()
        harness.check_safety()
        harness.check_mbrshp()
