"""Runner episodes, seed reproducibility, shrinking, and slow sweeps.

The fast tests run on the simulator only; the ``slow``-marked sweeps
exercise the asyncio and TCP runtimes and are picked up by the
chaos-smoke CI job (``pytest -m slow``).
"""

import json

import pytest

from repro.chaos import (
    ChaosPlan,
    ChaosRunner,
    forge_nonmonotonic_view,
    shrink_plan,
)


class TestRunner:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ChaosRunner("carrier-pigeon")

    def test_sim_episode_passes_with_faults_injected(self):
        episode = ChaosRunner("sim").run_seed(3)
        assert episode.ok, episode.summary()
        assert episode.events > 0
        assert episode.counters["messages"] > 0
        # The generated fault model has nonzero rates for every class;
        # an episode's traffic is enough for each to actually fire.
        assert episode.counters["dropped"] > 0
        assert episode.counters["duplicated"] > 0
        # Every duplicate that reaches a live receiver is suppressed
        # there; copies aimed at crashed or cut destinations never
        # arrive, so suppression can undercount but never overcount.
        assert 0 < episode.counters["suppressed"] <= episode.counters["duplicated"]

    def test_summary_mentions_seed_and_status(self):
        episode = ChaosRunner("sim").run_seed(4)
        assert f"seed={episode.plan.seed}" in episode.summary()
        assert episode.summary().endswith("ok")


class TestSeedReproducibility:
    """Satellite: the same seed must produce the identical trace."""

    @pytest.mark.parametrize("seed", [13, 29])
    def test_same_plan_twice_gives_identical_trace(self, seed):
        runner = ChaosRunner("sim")
        plan = ChaosPlan.generate(seed)
        first = runner.run(plan)
        second = runner.run(plan)
        assert first.ok and second.ok
        assert list(first.trace) == list(second.trace)
        assert first.counters == second.counters

    def test_json_round_trip_replays_identically(self):
        runner = ChaosRunner("sim")
        plan = ChaosPlan.generate(8)
        replayed = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert list(runner.run(plan).trace) == list(runner.run(replayed).trace)


class TestShrinking:
    def test_passing_plan_is_not_shrunk(self):
        assert shrink_plan(ChaosRunner("sim"), ChaosPlan.generate(3)) is None

    def test_known_bad_mutation_is_caught_and_shrunk(self):
        """The self-test loop: forge a violation, catch it, minimise it."""
        runner = ChaosRunner("sim", mutate_trace=forge_nonmonotonic_view)
        original = ChaosPlan.generate(7)
        result = shrink_plan(runner, original, max_runs=40)
        assert result is not None, "checkers missed the forged violation"
        assert "Local Monotonicity" in result.violation
        # The forged violation survives any schedule, so shrinking must
        # reach the floor: minimal ops, 2 processes, no message faults.
        assert len(result.plan.ops) < len(original.ops)
        assert len(result.plan.processes) == 2
        assert result.plan.faults.active_rates() == {}
        # The printed JSON replays to the same violation.
        replayed = ChaosPlan.from_dict(json.loads(json.dumps(result.plan.to_dict())))
        episode = runner.run(replayed)
        assert not episode.ok
        assert episode.violation == result.violation


@pytest.mark.slow
class TestSweeps:
    """Multi-seed sweeps per substrate - the chaos-smoke CI battery."""

    def test_sim_sweep_clean(self):
        episodes = ChaosRunner("sim").sweep(list(range(25)))
        bad = [e.summary() for e in episodes if not e.ok]
        assert not bad, "\n".join(bad)

    def test_async_sweep_clean(self):
        episodes = ChaosRunner("async").sweep(list(range(100, 110)))
        bad = [e.summary() for e in episodes if not e.ok]
        assert not bad, "\n".join(bad)

    def test_tcp_sweep_clean(self):
        episodes = ChaosRunner("tcp").sweep(list(range(200, 210)))
        bad = [e.summary() for e in episodes if not e.ok]
        assert not bad, "\n".join(bad)
