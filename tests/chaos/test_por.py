"""Partial-order reduction: independence, canonical forms, dedup.

The contract under test (``repro.chaos.por``): only sends by different
processes commute, the claim is gated on the footprint engine's verdict
about the ``send`` chain, canonicalisation never moves an op across a
dependent one, and both consumers - the shrinker and the E16 sweep -
skip POR-equivalent schedules without ever skipping a behaviour class
they have not executed.
"""

import importlib

import pytest

from repro.chaos import ChaosOp, ChaosPlan, por
from repro.chaos.por import canonical_ops, ops_commute, schedule_key
from repro.chaos.shrink import _Shrinker

# The package re-exports the function under the module's name, so reach
# the module itself through importlib for monkeypatching.
sweep_mod = importlib.import_module("repro.experiments.chaos_sweep")


def _send(pid, payload):
    return ChaosOp(kind="send", pid=pid, payload=payload)


def _two_send_plan():
    base = ChaosPlan.generate(1, intensity=0.0)
    return base.with_ops(
        (_send("b", "b-x"), _send("a", "a-x"), ChaosOp(kind="settle"))
    )


def _swapped(plan):
    ops = list(plan.ops)
    ops[0], ops[1] = ops[1], ops[0]
    return plan.with_ops(ops)


def test_gate_holds_on_the_shipped_endpoint(monkeypatch):
    """The send chain writes no membership state, so sends may commute."""
    monkeypatch.setattr(por, "_SEND_NEUTRAL", None)  # force recompute
    assert por.sends_membership_neutral() is True


def test_independence_is_only_cross_process_sends():
    a, b = _send("a", "1"), _send("b", "2")
    assert ops_commute(a, b) and ops_commute(b, a)
    assert not ops_commute(a, _send("a", "3"))  # same sender: FIFO order
    assert not ops_commute(a, ChaosOp(kind="settle"))
    assert not ops_commute(ChaosOp(kind="crash", pid="b"), a)


def test_gate_failure_disables_commuting(monkeypatch):
    monkeypatch.setattr(por, "_SEND_NEUTRAL", False)
    assert not ops_commute(_send("a", "1"), _send("b", "2"))


def test_canonical_ops_sorts_only_across_independent_pairs():
    a, b, c = _send("a", "1"), _send("b", "2"), _send("c", "3")
    settle = ChaosOp(kind="settle")
    assert canonical_ops([c, b, a]) == (a, b, c)
    # The settle is a barrier: sends never cross it.
    assert canonical_ops([b, settle, a]) == (b, settle, a)
    assert canonical_ops([]) == ()


def test_schedule_key_identifies_swap_equivalent_plans():
    plan = _two_send_plan()
    swapped = _swapped(plan)
    assert plan.ops != swapped.ops
    assert schedule_key(plan) == schedule_key(swapped)
    # Dropping an op changes the behaviour class.
    shorter = plan.with_ops(plan.ops[1:])
    assert schedule_key(plan) != schedule_key(shorter)


def test_schedule_key_ignores_seed_and_idle_fault_model():
    plan = _two_send_plan()
    other_seed = ChaosPlan.generate(2, intensity=0.0).with_ops(plan.ops)
    if other_seed.processes == plan.processes:
        assert schedule_key(plan) == schedule_key(other_seed)
    refit = plan.with_faults(plan.faults.__class__(seed=99))
    assert schedule_key(plan) == schedule_key(refit)


class _NeverRun:
    """A runner for candidates that must be skipped, not executed."""

    def run(self, plan):
        raise RuntimeError("POR-deduped candidate must not execute")


def test_shrinker_dedup_skips_without_spending_a_run():
    plan = _two_send_plan()
    shrinker = _Shrinker(_NeverRun(), max_runs=4, por=True)
    shrinker.remember(plan)
    assert shrinker.try_candidate(_swapped(plan)) is False
    assert shrinker.deduped == 1
    assert shrinker.candidates == 1
    assert shrinker.runs == 0  # skips are free

    # Without POR the same candidate goes straight to execution.
    baseline = _Shrinker(_NeverRun(), max_runs=4, por=False)
    baseline.remember(plan)
    with pytest.raises(RuntimeError):
        baseline.try_candidate(_swapped(plan))


def test_sweep_skips_por_equivalent_episodes(monkeypatch):
    plan = _two_send_plan()
    plans = {0: plan, 1: _swapped(plan)}

    class _StubPlans:
        @staticmethod
        def generate(seed, *, intensity=1.0, overlay_leaders=0, servers=0):
            return plans[seed]

    monkeypatch.setattr(sweep_mod, "ChaosPlan", _StubPlans)
    reduced = sweep_mod.chaos_sweep("sim", episodes=2, seed_base=0)
    baseline = sweep_mod.chaos_sweep("sim", episodes=2, seed_base=0, por=False)
    assert reduced.ok and baseline.ok
    assert reduced.por_skipped == 1
    assert baseline.por_skipped == 0
    # The skipped twin never ran: half the schedule work, same coverage.
    assert reduced.ops * 2 == baseline.ops
