"""Plan generation: validity, determinism, serialisation, sanitising."""

import pytest

from repro.chaos import ChaosOp, ChaosPlan, sanitise_ops
from repro.chaos.plan import _ScheduleState


def assert_executable(plan: ChaosPlan) -> None:
    """Every op must be enabled at its position in the schedule."""
    state = _ScheduleState(plan.processes)
    for op in plan.ops:
        assert state.enabled(op), f"disabled op in schedule: {op.describe()}"
        state.apply(op)
    # The closing suffix must have restored the stable full view.
    assert not state.partitioned
    assert not state.crashed
    assert state.configured == state.full
    assert plan.ops[-1].kind == "settle"


class TestGeneration:
    @pytest.mark.parametrize("seed", range(30))
    def test_generated_plans_are_executable(self, seed):
        assert_executable(ChaosPlan.generate(seed))

    def test_same_seed_same_plan(self):
        assert ChaosPlan.generate(17) == ChaosPlan.generate(17)

    def test_different_seeds_differ(self):
        plans = {ChaosPlan.generate(s).describe() for s in range(10)}
        assert len(plans) == 10

    def test_intensity_zero_disables_faults(self):
        plan = ChaosPlan.generate(5, intensity=0.0)
        assert plan.faults.active_rates() == {}
        assert plan.faults.describe() == "no faults"

    def test_explicit_processes_and_length(self):
        plan = ChaosPlan.generate(1, processes=["p", "q", "r"], length=4)
        assert plan.processes == ("p", "q", "r")
        assert_executable(plan)

    def test_too_few_processes_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ChaosPlan.generate(1, processes=["solo"])


class TestSerialisation:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_round_trip(self, seed):
        plan = ChaosPlan.generate(seed)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_survives_json(self):
        import json

        plan = ChaosPlan.generate(3)
        restored = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan


class TestSanitise:
    def test_disabled_ops_are_dropped(self):
        procs = ("a", "b", "c")
        ops = [
            ChaosOp("heal"),  # not partitioned: disabled
            ChaosOp("recover", pid="a"),  # nothing crashed: disabled
            ChaosOp("send", pid="z", payload="ghost"),  # unknown sender
            ChaosOp("send", pid="a", payload="real"),
        ]
        kept = sanitise_ops(procs, ops)
        kinds = [op.kind for op in kept]
        assert kinds == ["send", "settle"]
        assert kept[0].payload == "real"

    def test_open_schedule_gets_closed(self):
        procs = ("a", "b", "c")
        ops = [
            ChaosOp("partition", groups=(("a",), ("b", "c"))),
            ChaosOp("send", pid="a", payload="island"),
        ]
        kept = sanitise_ops(procs, ops)
        assert [op.kind for op in kept] == ["partition", "send", "heal", "settle"]

    def test_sanitise_is_a_fixpoint(self):
        plan = ChaosPlan.generate(11)
        assert sanitise_ops(plan.processes, plan.ops) == plan.ops

    def test_with_processes_prunes_ops(self):
        plan = ChaosPlan.generate(2, processes=["a", "b", "c", "d"])
        smaller = plan.with_processes(["a", "b", "c"])
        assert smaller.processes == ("a", "b", "c")
        assert all(op.pid != "d" for op in smaller.ops)
        assert_executable(smaller)
        with pytest.raises(ValueError, match="below 2"):
            plan.with_processes(["a"])
