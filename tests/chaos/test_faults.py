"""Unit tests for the fault models and the deterministic injector."""

import pickle

import pytest

from repro.chaos import DuplicateCopy, FaultInjector, FaultModel


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop rate"):
            FaultModel(drop=1.5)
        with pytest.raises(ValueError, match="non-negative"):
            FaultModel(penalty=-1.0)

    def test_without_switches_one_class_off(self):
        model = FaultModel(drop=0.2, delay=0.3)
        assert model.without("drop").drop == 0.0
        assert model.without("drop").delay == 0.3

    def test_active_rates_and_describe(self):
        model = FaultModel(duplicate=0.1)
        assert model.active_rates() == {"duplicate": 0.1}
        assert "duplicate=0.1" in model.describe()
        assert FaultModel().describe() == "no faults"

    def test_serialisation_round_trip(self):
        model = FaultModel(drop=0.2, duplicate=0.1, delay=0.3, reorder=0.05, seed=42)
        assert FaultModel.from_dict(model.to_dict()) == model


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        decisions = []
        for _ in range(2):
            injector = FaultInjector(FaultModel(drop=0.5, duplicate=0.3, seed=9))
            decisions.append([injector.decide("a", "b") for _ in range(50)])
        assert decisions[0] == decisions[1]

    def test_counters_track_injections(self):
        injector = FaultInjector(FaultModel(drop=1.0, duplicate=1.0, seed=1))
        for _ in range(10):
            decision = injector.decide("a", "b")
            assert decision.dropped and decision.duplicate
            assert decision.extra_delay > 0
        injector.suppressed_duplicate()
        snap = injector.snapshot()
        assert snap["messages"] == 10
        assert snap["dropped"] == 10
        assert snap["duplicated"] == 10
        assert snap["suppressed"] == 1

    def test_no_faults_means_clean_decisions(self):
        injector = FaultInjector(FaultModel())
        decision = injector.decide("a", "b")
        assert decision.extra_delay == 0.0
        assert not decision.duplicate and not decision.dropped

    def test_time_scale_scales_delays(self):
        fast = FaultInjector(FaultModel(drop=1.0, seed=3), time_scale=1.0)
        slow = FaultInjector(FaultModel(drop=1.0, seed=3), time_scale=10.0)
        assert slow.decide("a", "b").extra_delay == pytest.approx(
            10.0 * fast.decide("a", "b").extra_delay
        )

    def test_time_scale_validated(self):
        with pytest.raises(ValueError, match="time_scale"):
            FaultInjector(FaultModel(), time_scale=0.0)


class TestDuplicateCopy:
    def test_picklable_for_tcp_frames(self):
        copy = DuplicateCopy(("payload", 42))
        restored = pickle.loads(pickle.dumps(copy))
        assert isinstance(restored, DuplicateCopy)
        assert restored.message == ("payload", 42)
