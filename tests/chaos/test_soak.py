"""Soak mode: open-ended chaos streams with periodic audits."""

import json

import pytest

from repro.chaos import (
    SoakReport,
    SoakRunner,
    default_resident_limit,
    soak_matrix,
)


class TestParameters:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SoakRunner("carrier-pigeon")

    def test_invalid_knobs_rejected(self):
        runner = SoakRunner("sim")
        with pytest.raises(ValueError, match="duration"):
            runner.soak(1, duration=0.0)
        with pytest.raises(ValueError, match="audit_every"):
            runner.soak(1, audit_every=0)

    def test_resident_limit_is_length_independent(self):
        # The whole point of the bound: it depends on the audit window,
        # never on how long the soak runs.
        assert default_resident_limit(4, 50) == default_resident_limit(4, 50)
        assert default_resident_limit(4, 100) > default_resident_limit(4, 50)
        assert default_resident_limit(8, 50) > default_resident_limit(4, 50)


class TestShortSoaks:
    def test_bounded_sim_soak_is_green(self):
        report = SoakRunner("sim").soak(
            11, duration=1e9, max_ops=40, audit_every=10, servers=3
        )
        assert report.ok, report.summary()
        assert report.ops >= 40  # closing suffix lands on top of max_ops
        assert report.audits >= 4
        assert report.events > 0
        assert report.verdict is not None and report.verdict.ok
        assert report.max_resident <= report.resident_limit

    def test_report_round_trips_to_json(self):
        report = SoakRunner("sim").soak(
            3, duration=1e9, max_ops=15, audit_every=5, servers=2
        )
        data = json.loads(json.dumps(report.to_dict()))
        assert data["backend"] == "sim"
        assert data["seed"] == 3
        assert data["ok"] is True
        assert data["verdict"]["status"] == "PASS"
        assert data["counters"]["messages"] > 0
        assert "soak seed=3" in report.summary()

    def test_residency_violation_is_reported_not_raised(self):
        # An impossible limit trips the memory assertion at the first
        # clean audit - the report carries the finding, nothing raises.
        report = SoakRunner("sim").soak(
            11, duration=1e9, max_ops=40, audit_every=10, servers=0,
            resident_limit=-1,
        )
        assert not report.ok
        assert "memory residency" in report.violation

    def test_runtimes_observe_residency_without_enforcing(self):
        report = SoakReport(backend="async", seed=1, servers=0, duration=1.0)
        assert report.resident_limit is None  # default: observe-only
        assert report.ok


@pytest.mark.slow
class TestLongSoaks:
    def test_one_simulated_hour_with_server_faults(self):
        # Acceptance: >= 1 simulated hour under server churn, green
        # verdicts throughout and bounded endpoint memory at every
        # clean audit point.
        report = SoakRunner("sim").soak(42, duration=3600.0, servers=3)
        assert report.ok, report.summary()
        assert report.elapsed >= 3600.0
        assert report.audits >= 2
        assert report.max_resident <= report.resident_limit

    @pytest.mark.parametrize("backend", ["async", "tcp"])
    def test_runtime_soak_is_green(self, backend):
        reports = soak_matrix(
            [7], backends=(backend,), duration=5.0, servers=3, audit_every=20
        )
        (report,) = reports
        assert report.ok, report.summary()
        assert report.elapsed >= 5.0
        assert report.audits >= 1
