"""The ``leader_crash`` chaos op and overlay-backed episodes (ISSUE 7, S6)."""

import pytest

from repro.chaos import ChaosPlan, ChaosRunner, sanitise_ops
from repro.chaos.plan import ChaosOp, _ScheduleState


class TestScheduleState:
    def test_leaders_computed_like_the_overlay(self):
        # 4 processes, 2 leaders: contiguous groups [a, b] and [c, d],
        # each led by its least alive member.
        state = _ScheduleState(("a", "b", "c", "d"), leaders=2)
        assert state.current_leaders() == ["a", "c"]
        state.apply(ChaosOp("leader_crash", pid="a"))
        assert state.current_leaders() == ["b", "c"]  # re-election

    def test_disabled_without_overlay(self):
        state = _ScheduleState(("a", "b", "c", "d"))
        assert state.leader_crash_candidates() == []
        assert not state.enabled(ChaosOp("leader_crash", pid="a"))

    def test_only_acting_leaders_qualify(self):
        state = _ScheduleState(("a", "b", "c", "d"), leaders=2)
        assert state.enabled(ChaosOp("leader_crash", pid="a"))
        assert not state.enabled(ChaosOp("leader_crash", pid="b"))

    def test_same_preconditions_as_crash(self):
        state = _ScheduleState(("a", "b", "c", "d"), leaders=2)
        state.apply(ChaosOp("partition", groups=(("a", "b"), ("c", "d"))))
        assert not state.enabled(ChaosOp("leader_crash", pid="a"))


class TestPlans:
    def test_generation_emits_leader_crashes(self):
        kinds = set()
        for seed in range(40):
            plan = ChaosPlan.generate(seed, overlay_leaders=2)
            assert plan.overlay_leaders == 2
            kinds.update(op.kind for op in plan.ops)
        assert "leader_crash" in kinds

    def test_plain_plans_never_emit_them(self):
        for seed in range(40):
            assert all(
                op.kind != "leader_crash"
                for op in ChaosPlan.generate(seed).ops
            )

    def test_serialisation_round_trip(self):
        plan = ChaosPlan.generate(3, overlay_leaders=2)
        data = plan.to_dict()
        assert data["overlay_leaders"] == 2
        assert ChaosPlan.from_dict(data) == plan
        # Old serialisations (no overlay_leaders key) still load.
        legacy = ChaosPlan.generate(3).to_dict()
        assert "overlay_leaders" not in legacy
        assert ChaosPlan.from_dict(legacy).overlay_leaders == 0

    def test_sanitise_drops_leader_crash_without_leaders(self):
        ops = [ChaosOp("leader_crash", pid="a"), ChaosOp("settle")]
        assert all(
            op.kind != "leader_crash"
            for op in sanitise_ops(("a", "b", "c"), ops)
        )
        kept = sanitise_ops(("a", "b", "c"), ops, leaders=1)
        assert any(op.kind == "leader_crash" for op in kept)
        # ...and the closing suffix recovers the crashed leader.
        assert any(
            op.kind == "recover" and op.pid == "a" for op in kept
        )

    def test_with_processes_keeps_overlay(self):
        plan = ChaosPlan.generate(3, processes=("a", "b", "c", "d"), overlay_leaders=2)
        shrunk = plan.with_processes(("a", "b", "c"))
        assert shrunk.overlay_leaders == 2


class TestEpisodes:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_sim_overlay_episode_passes(self, seed):
        plan = ChaosPlan.generate(seed, overlay_leaders=2)
        episode = ChaosRunner("sim").run(plan)
        assert episode.ok, episode.summary()

    def test_overlay_traffic_is_aggregated(self):
        # A fault-free episode that actually crashes a leader: the
        # overlay must have carried syncs (UpSync/AggregatedSync on the
        # wire) through the re-election.
        plan = next(
            p
            for s in range(40)
            for p in [ChaosPlan.generate(s, overlay_leaders=2, intensity=0.0)]
            if any(op.kind == "leader_crash" for op in p.ops)
        )
        episode = ChaosRunner("sim").run(plan)
        assert episode.ok, episode.summary()
        assert episode.link_totals.get("UpSync", 0) > 0
        assert episode.link_totals.get("AggregatedSync", 0) > 0


@pytest.mark.slow
class TestOverlaySweeps:
    def test_async_overlay_episode_passes(self):
        plan = ChaosPlan.generate(310, overlay_leaders=2)
        episode = ChaosRunner("async").run(plan)
        assert episode.ok, episode.summary()

    def test_tcp_overlay_episode_passes(self):
        plan = ChaosPlan.generate(320, overlay_leaders=2)
        episode = ChaosRunner("tcp").run(plan)
        assert episode.ok, episode.summary()
