"""Shrink-witness stability: minimisation never trades the bug away.

The shrinker's contract (see ``repro.chaos.shrink``): a candidate plan
is adopted only if it reproduces the original violation **code** at the
same or an earlier **witness index**.  This property test seeds ≥20
failing episodes - fault-free generated plans whose traces are corrupted
through the per-code forgeries via ``as_mutator`` - shrinks each, and
asserts the finding kept the code, never moved the witness later, and
replays byte-for-byte from its own ``finding()`` payload.

A three-seed subset runs in tier-1; the full sweep is ``slow`` and runs
in the verdict-smoke CI job.
"""

import pytest

from repro.chaos import ChaosPlan, ChaosRunner, FaultModel, shrink_plan
from repro.checking.forge import FORGERIES, as_mutator

#: Forgeries applicable to any completed episode trace (every run has
#: view deliveries and membership notices to corrupt).
ALWAYS_APPLICABLE = ("VS-MONO", "VS-SELF-INCL", "MBRSHP-CONF")

FAST_SEEDS = (1, 2, 3)
FULL_SEEDS = tuple(range(1, 25))


def forged_runner_and_plan(seed):
    code = ALWAYS_APPLICABLE[seed % len(ALWAYS_APPLICABLE)]
    runner = ChaosRunner("sim", mutate_trace=as_mutator(FORGERIES[code]))
    plan = ChaosPlan.generate(seed).with_faults(FaultModel())
    return code, runner, plan


def assert_shrink_preserves_witness(seed):
    code, runner, plan = forged_runner_and_plan(seed)
    episode = runner.run(plan)
    assert not episode.ok, f"seed {seed}: forgery failed to corrupt the trace"
    assert episode.code == code
    original_witness = episode.witness_index
    assert original_witness is not None

    result = shrink_plan(runner, plan, max_runs=12)
    assert result is not None
    assert result.code == code
    assert result.witness_index is not None
    assert result.witness_index <= original_witness

    # POR differential: dedup may only save episodes, never change the
    # finding - same code both ways, witness never later than the
    # original, and the POR run spends no more episodes than baseline.
    baseline = shrink_plan(runner, plan, max_runs=12, por=False)
    assert baseline is not None
    assert baseline.code == result.code == code
    assert baseline.witness_index is not None
    assert baseline.witness_index <= original_witness
    assert result.runs <= baseline.runs
    assert result.candidates >= result.runs - 1  # every episode had a candidate
    assert "POR-deduped" in result.summary()

    # The finding replays byte-for-byte: re-running the minimal schedule
    # reproduces the same code at the same witness, and the JSON of the
    # finding itself is stable.
    finding = result.finding()
    replayed = runner.run(ChaosPlan.from_dict(finding["minimal_schedule"]))
    assert replayed.code == finding["code"] == code
    assert replayed.witness_index == finding["witness_index"]
    assert result.finding_json() == result.finding_json()


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_shrink_preserves_code_and_witness(seed):
    assert_shrink_preserves_witness(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [s for s in FULL_SEEDS if s not in FAST_SEEDS])
def test_shrink_preserves_code_and_witness_full_sweep(seed):
    assert_shrink_preserves_witness(seed)
