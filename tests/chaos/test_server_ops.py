"""Server fault-domain chaos ops: state machine, plans, shrink, episodes."""

import pytest

from repro.chaos import (
    ChaosPlan,
    ChaosRunner,
    forge_nonmonotonic_view,
    sanitise_ops,
    shrink_plan,
)
from repro.chaos.plan import ChaosOp, _ScheduleState

PROCS = ("a", "b", "c", "d")


class TestScheduleState:
    def test_disabled_without_servers(self):
        state = _ScheduleState(PROCS)
        assert state.server_crash_candidates() == []
        assert state.server_recover_candidates() == []
        assert not state.can_server_partition()
        assert not state.enabled(ChaosOp("server_crash", server=0))

    def test_candidates_with_a_tier(self):
        state = _ScheduleState(PROCS, servers=3)
        assert state.server_crash_candidates() == [0, 1, 2]
        assert state.can_server_partition()

    def test_last_alive_server_never_crashes(self):
        state = _ScheduleState(PROCS, servers=2)
        state.apply(ChaosOp("server_crash", server=0))
        # One survivor left: nothing more may crash, only recovery.
        assert state.server_crash_candidates() == []
        assert state.server_recover_candidates() == [0]

    def test_client_partition_excludes_server_faults(self):
        state = _ScheduleState(PROCS, servers=3)
        state.apply(ChaosOp("partition", groups=(("a", "b"), ("c", "d"))))
        assert state.server_crash_candidates() == []
        assert not state.can_server_partition()

    def test_server_partition_excludes_client_churn(self):
        state = _ScheduleState(PROCS, servers=3)
        op = ChaosOp("server_partition", server_groups=((0,), (1, 2)))
        assert state.enabled(op)
        state.apply(op)
        # Runtime crash/reconfigure awaits views that cannot form across
        # a tier cut, so the schedule forbids them until the heal.
        assert not state.can_partition()
        assert state.crash_candidates() == []
        assert not state.can_reconfigure()
        assert state.server_crash_candidates() == []

    def test_server_partition_must_cover_every_server(self):
        state = _ScheduleState(PROCS, servers=3)
        partial = ChaosOp("server_partition", server_groups=((0,), (1,)))
        assert not state.enabled(partial)

    def test_heal_clears_both_partition_kinds(self):
        state = _ScheduleState(PROCS, servers=3)
        state.apply(ChaosOp("server_partition", server_groups=((0,), (1, 2))))
        state.apply(ChaosOp("heal"))
        assert not state.server_partitioned
        assert state.server_crash_candidates() == [0, 1, 2]

    def test_closing_ops_recover_crashed_servers(self):
        state = _ScheduleState(PROCS, servers=3)
        state.apply(ChaosOp("server_crash", server=1))
        closing = state.closing_ops()
        assert ChaosOp("server_recover", server=1) in closing
        assert closing[-1].kind == "settle"


class TestPlans:
    def test_generation_emits_server_ops(self):
        kinds = set()
        for seed in range(40):
            plan = ChaosPlan.generate(seed, servers=3)
            assert plan.servers == 3
            kinds.update(op.kind for op in plan.ops)
        assert "server_crash" in kinds
        assert "server_recover" in kinds
        assert "server_partition" in kinds

    def test_plain_plans_never_emit_them(self):
        for seed in range(40):
            assert all(
                not op.kind.startswith("server_")
                for op in ChaosPlan.generate(seed).ops
            )

    def test_serialisation_round_trip(self):
        plan = ChaosPlan.generate(5, servers=3)
        data = plan.to_dict()
        assert data["servers"] == 3
        assert ChaosPlan.from_dict(data) == plan

    def test_old_serialisations_still_load(self):
        # Pre-server-fault dicts carry none of the new keys and must
        # round-trip to a tierless plan unchanged.
        legacy = ChaosPlan.generate(5).to_dict()
        assert "servers" not in legacy
        for op in legacy["ops"]:
            assert "server" not in op
            assert "server_groups" not in op
        assert ChaosPlan.from_dict(legacy).servers == 0

    def test_sanitise_drops_server_ops_without_a_tier(self):
        ops = [ChaosOp("server_crash", server=0), ChaosOp("settle")]
        assert all(
            not op.kind.startswith("server_")
            for op in sanitise_ops(PROCS, ops)
        )
        kept = sanitise_ops(PROCS, ops, servers=3)
        assert any(op.kind == "server_crash" for op in kept)
        assert any(
            op.kind == "server_recover" and op.server == 0 for op in kept
        )

    def test_sanitise_is_a_fixpoint_with_server_ops(self):
        for seed in range(20):
            plan = ChaosPlan.generate(seed, servers=3)
            once = sanitise_ops(plan.processes, plan.ops, servers=3)
            assert sanitise_ops(plan.processes, once, servers=3) == once

    def test_with_processes_keeps_servers(self):
        plan = ChaosPlan.generate(5, processes=PROCS, servers=3)
        assert plan.with_processes(("a", "b", "c")).servers == 3

    def test_describe_names_the_tier(self):
        assert "servers=3" in ChaosPlan.generate(5, servers=3).describe()


class TestShrink:
    def test_shrinker_drops_an_idle_tier(self):
        # The forged violation is substrate-independent, so the shrinker
        # should strip the server ops and then the tier itself.
        runner = ChaosRunner("sim", mutate_trace=forge_nonmonotonic_view)
        plan = ChaosPlan.generate(3, servers=3)
        result = shrink_plan(runner, plan, max_runs=60)
        assert result is not None
        assert result.code == "VS-MONO"
        assert all(
            not op.kind.startswith("server_") for op in result.plan.ops
        )
        assert result.plan.servers == 0


class TestEpisodes:
    @pytest.mark.parametrize("seed", [1, 4, 8])
    def test_sim_server_episode_passes(self, seed):
        plan = ChaosPlan.generate(seed, servers=3)
        episode = ChaosRunner("sim").run(plan)
        assert episode.ok, episode.summary()

    def test_tier_traffic_survives_a_server_crash(self):
        # A fault-free episode that actually crashes a server: the tier
        # protocol (view notices at least) must show up on the wire.
        plan = next(
            p
            for s in range(40)
            for p in [ChaosPlan.generate(s, servers=3, intensity=0.0)]
            if any(op.kind == "server_crash" for op in p.ops)
        )
        episode = ChaosRunner("sim").run(plan)
        assert episode.ok, episode.summary()
        assert episode.link_totals.get("ViewNotice", 0) > 0


@pytest.mark.slow
class TestServerSweeps:
    """Acceptance: 25 seeded episodes per substrate, zero findings."""

    @pytest.mark.parametrize("backend", ["sim", "async", "tcp"])
    def test_server_fault_sweep_is_green(self, backend):
        runner = ChaosRunner(backend)
        episodes = runner.sweep(list(range(25)), servers=3)
        bad = [e.summary() for e in episodes if not e.ok]
        assert not bad, "\n".join(bad)
        server_ops = sum(
            1
            for e in episodes
            for op in e.plan.ops
            if op.kind.startswith("server_")
        )
        assert server_ops > 0  # the sweep actually exercised the tier
