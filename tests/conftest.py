"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import pytest

from repro.checking.events import (
    DeliverEvent,
    GcsTrace,
    SendEvent,
    ViewEvent,
)
from repro.harness import ModelHarness
from repro.types import ProcessId, View, make_view


@pytest.fixture
def abc_harness() -> ModelHarness:
    """A strict three-process model with scripted clients."""
    return ModelHarness(
        "abc",
        seed=7,
        scripts={p: [f"{p}{i}" for i in range(3)] for p in "abc"},
    )


def run_clean_view_change(harness: ModelHarness, members: str = "abc", max_steps: int = 30_000):
    """Form a view over ``members`` and run fairly to quiescence."""
    view = harness.form_view(members)
    scheduler = harness.scheduler("fair")
    scheduler.run(max_steps=max_steps)
    return view, scheduler


def trace_of(*events) -> GcsTrace:
    """Build a GcsTrace from (kind, proc, ...) shorthand tuples.

    Shorthands: ("send", p, payload), ("dlv", p, sender, payload),
    ("view", p, view, transitional-iterable).
    """
    trace = GcsTrace()
    for time, event in enumerate(events):
        kind = event[0]
        if kind == "send":
            _, p, payload = event
            trace.append(SendEvent(float(time), p, payload))
        elif kind == "dlv":
            _, p, sender, payload = event
            trace.append(DeliverEvent(float(time), p, sender, payload))
        elif kind == "view":
            _, p, view, transitional = event
            trace.append(ViewEvent(float(time), p, view, frozenset(transitional)))
        else:
            raise ValueError(f"unknown shorthand {kind!r}")
    return trace


@pytest.fixture
def view_ab() -> View:
    return make_view(1, ["a", "b"], {"a": 1, "b": 1})


@pytest.fixture
def view_abc() -> View:
    return make_view(2, ["a", "b", "c"], {"a": 2, "b": 2, "c": 2})
