"""Differential conformance of the two-tier overlay (ISSUE 7, S3).

The overlay's promise: installing it changes *routing*, never
*behaviour*.  These tests run the same scenarios with the overlay on
and off and compare the virtually-synchronous observables (views
installed, transitional sets, per-sender delivery order, per-view
delivery sets), then confirm on every substrate that sync traffic is
fully aggregated while sender attribution survives the relay - and that
a leader crash, including one in the middle of a reconfiguration, only
re-routes.
"""

import asyncio
from collections import defaultdict

import pytest

from repro.checking import check_all_safety
from repro.checking.events import DeliverEvent, ViewEvent
from repro.deploy import SUBSTRATES, make_deployment
from repro.net import ConstantLatency, SimWorld
from repro.scale import TwoTierOverlay, balanced_groups, install_overlay


def _make_world(n=8, leaders=0):
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=3.0,
        gc_views=False,
    )
    pids = [f"p{i:02d}" for i in range(n)]
    nodes = world.add_nodes(pids)
    overlay = None
    if leaders:
        overlay = TwoTierOverlay(
            {pid: node.runner for pid, node in world.nodes.items()},
            world.clock.schedule,
            balanced_groups(pids, leaders),
            connected=world.network.connected,
        )
    world.start()
    world.run()
    return world, nodes, overlay


def _churn_scenario(leaders):
    """Sends and crashes touching followers and leaders alike."""
    world, nodes, overlay = _make_world(n=8, leaders=leaders)
    pids = [node.pid for node in nodes]
    for node in nodes:
        node.send("warm-" + node.pid)
    world.run()
    world.crash(pids[-1])  # follower crash
    world.run()
    for node in nodes[:-1]:
        node.send("after-" + node.pid)
    world.run()
    world.crash(pids[0])  # leader crash (re-election under the overlay)
    world.run()
    for node in nodes[1:-1]:
        node.send("final-" + node.pid)
    world.run()
    return world, nodes, overlay


def _observables(world, nodes):
    """The virtually-synchronous content of a run, routing-independent.

    Per process: the sequence of (vid, members, transitional set) it
    installed, the set of (sender, payload) delivered in each view
    segment, and the per-sender delivery order.
    """
    views = defaultdict(list)
    segments = defaultdict(lambda: defaultdict(set))
    fifo = defaultdict(list)
    segment_index = defaultdict(int)
    for event in world.trace:
        if isinstance(event, ViewEvent):
            views[event.proc].append(
                (event.view.vid, event.view.members, event.transitional)
            )
            segment_index[event.proc] += 1
        elif isinstance(event, DeliverEvent):
            pid = event.proc
            segments[pid][segment_index[pid]].add((event.sender, event.payload))
            fifo[(pid, event.sender)].append(event.payload)
    return (
        {pid: tuple(entries) for pid, entries in views.items()},
        {pid: dict(by_segment) for pid, by_segment in segments.items()},
        dict(fifo),
    )


class TestDifferentialEquivalence:
    def test_overlay_preserves_vs_observables(self):
        flat_world, flat_nodes, _ = _churn_scenario(leaders=0)
        two_world, two_nodes, _ = _churn_scenario(leaders=2)
        assert _observables(flat_world, flat_nodes) == _observables(
            two_world, two_nodes
        )
        check_all_safety(flat_world.trace, list(flat_world.nodes))
        check_all_safety(two_world.trace, list(two_world.nodes))

    def test_overlay_removes_direct_syncs(self):
        _world, _nodes, overlay = _churn_scenario(leaders=2)
        totals = _world.network.totals()
        assert totals.get("SyncMsg", 0) == 0
        assert totals.get("UpSync", 0) > 0
        assert totals.get("AggregatedSync", 0) > 0
        assert overlay.aggregates_sent > 0


async def _crash_reconfiguration(substrate):
    """Install the overlay on a real deployment, crash a member, settle."""
    deployment = make_deployment(substrate)
    try:
        pids = [f"p{i:02d}" for i in range(8)]
        await deployment.setup(pids)
        install_overlay(deployment, leaders=2)
        # Quiesce before counting: on tcp the outbox pumps may still be
        # draining setup-era traffic when the counters are reset.
        await deployment.settle()
        deployment.links.reset_counters()
        await deployment.crash(pids[-1])
        await deployment.settle()
        survivors = frozenset(pids[:-1])
        converged = all(
            deployment.current_view(pid).members == survivors for pid in pids[:-1]
        )
        deployment.check()
        return deployment.link_totals(), converged
    finally:
        await deployment.close()


class TestEverySubstrate:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_aggregation_and_attribution(self, substrate):
        """Syncs ride the overlay on every substrate; the relayed syncs
        keep their origin attribution (or the survivors could never have
        agreed on the crash view, and the safety battery would fail)."""
        totals, converged = asyncio.run(_crash_reconfiguration(substrate))
        assert converged
        assert totals.get("SyncMsg", 0) == 0
        assert totals.get("UpSync", 0) > 0
        assert totals.get("AggregatedSync", 0) > 0


class TestLeaderCrash:
    def test_leader_crash_re_elects(self):
        world, nodes, overlay = _make_world(n=8, leaders=2)
        pids = [node.pid for node in nodes]
        assert overlay.current_leaders() == {pids[0], pids[4]}
        world.network.reset_counters()
        world.crash(pids[0])
        world.run()
        assert overlay.current_leaders() == {pids[1], pids[4]}
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        assert world.network.totals().get("SyncMsg", 0) == 0
        check_all_safety(world.trace, list(world.nodes))

    def test_leader_crash_mid_reconfiguration(self):
        """The acceptance scenario: the leader dies *during* the sync
        phase of a reconfiguration it is aggregating."""
        world, nodes, _overlay = _make_world(n=8, leaders=2)
        pids = [node.pid for node in nodes]
        world.crash(pids[-1])  # start a reconfiguration...
        world.clock.run_until(world.clock.now + 0.5)  # start_change lands...
        world.crash(pids[0])  # ...and kill the aggregating leader
        world.run()
        final = world.oracle.views_formed[-1]
        assert final.members == frozenset(pids[1:-1])
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))
