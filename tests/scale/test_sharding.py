"""Group-sharded membership tier (ISSUE 7, S3).

Covers the consistent group->shard map (determinism, balance, minimal
movement), the per-shard Figure-2 notice discipline, the watermark-seeded
counters that keep Local Monotonicity alive across a resize, the crash
fan-out locality claim, the tier's self-growing ``plan_partition``, and
the :class:`~repro.scale.world.ScaleWorld` end-to-end.
"""

import asyncio

import pytest

from repro.membership.tier import MembershipTier
from repro.net.simclock import EventScheduler
from repro.scale.sharding import (
    GroupShardMap,
    MembershipShard,
    ShardedMembershipTier,
)
from repro.scale.world import ScaleWorld, auto_shards

GROUPS = [f"g{i:04d}" for i in range(1000)]


class TestGroupShardMap:
    def test_deterministic(self):
        one, two = GroupShardMap(8), GroupShardMap(8)
        assert [one.shard_of(g) for g in GROUPS] == [two.shard_of(g) for g in GROUPS]

    def test_balanced(self):
        placement = GroupShardMap(8).placement(GROUPS)
        per_shard = [sum(1 for s in placement.values() if s == i) for i in range(8)]
        # Expected 125 per shard; CRC alone (without the finalizer mix)
        # fails this badly because same-length names get correlated
        # weights.
        assert all(70 <= count <= 190 for count in per_shard), per_shard

    def test_minimal_movement_on_grow(self):
        before = GroupShardMap(8).placement(GROUPS)
        after = GroupShardMap(9).placement(GROUPS)
        moved = sum(1 for g in GROUPS if before[g] != after[g])
        # HRW moves only groups won by the new shard: ~1/9 of them.
        assert 0 < moved < 2 * len(GROUPS) // 9
        # ...and every moved group moved *to* the new shard.
        assert all(after[g] == 8 for g in GROUPS if before[g] != after[g])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GroupShardMap(0)


def _recording_shard(**kwargs):
    clock = EventScheduler()
    shard = MembershipShard(0, clock, set(), **kwargs)
    notices = []

    def attach(group, pid):
        shard.attach_client(
            group,
            pid,
            lambda cid, members, p=pid: notices.append(("sc", p, cid, members)),
            lambda view, p=pid: notices.append(("view", p, view)),
        )

    return clock, shard, notices, attach


class TestMembershipShard:
    def test_notice_discipline(self):
        clock, shard, notices, attach = _recording_shard()
        shard.adopt("g")
        for pid in ("a", "b"):
            attach("g", pid)
        view = shard.reconfigure("g", ["a", "b"])
        clock.run()
        # start_change precedes the view at every client, cids are
        # distinct, and the view carries them.
        assert [kind for kind, *_ in notices] == ["sc", "sc", "view", "view"]
        cids = {pid: cid for kind, pid, cid, _ in notices[:2]}
        assert cids == dict(view.start_ids)
        assert len(set(cids.values())) == 2

    def test_superseded_notices_cancelled(self):
        clock, shard, notices, attach = _recording_shard()
        shard.adopt("g")
        for pid in ("a", "b", "c"):
            attach("g", pid)
        shard.reconfigure("g", ["a", "b", "c"])
        final = shard.reconfigure("g", ["a", "b"])  # before anything fired
        clock.run()
        # Only the latest reconfiguration speaks for a and b; c (dropped)
        # still sees the first round's notices - it was never superseded
        # *at c*.
        views = [n[2] for n in notices if n[0] == "view" and n[1] != "c"]
        assert views == [final, final]

    def test_crashed_clients_get_nothing(self):
        clock, shard, notices, attach = _recording_shard()
        shard._crashed.add("b")
        shard.adopt("g")
        for pid in ("a", "b"):
            attach("g", pid)
        view = shard.reconfigure("g", ["a", "b"])
        clock.run()
        assert view.members == frozenset({"a"})
        assert all(pid == "a" for _, pid, *rest in notices)

    def test_reconfigure_requires_ownership(self):
        clock, shard, _notices, _attach = _recording_shard()
        with pytest.raises(ValueError):
            shard.reconfigure("nobody", ["a"])


class TestShardedTier:
    def _tier(self, shards=3):
        clock = EventScheduler()
        return clock, ShardedMembershipTier(clock, shards=shards)

    def test_crash_fans_out_to_own_groups_only(self):
        clock, tier = self._tier()
        pids = [f"p{i}" for i in range(9)]
        for i in range(9):  # group gN = {pN, pN+1, pN+2} on a ring
            tier.set_group(f"g{i}", [pids[(i + k) % 9] for k in range(3)])
        clock.run()
        views = tier.client_crashed("p4")
        # p4 is in g2, g3, g4 and nothing else.
        assert len(views) == 3
        assert all("p4" not in view.members for view in views)

    def test_resize_preserves_local_monotonicity(self):
        clock, tier = self._tier(shards=2)
        small, large = GroupShardMap(2), GroupShardMap(3)
        group = next(g for g in GROUPS if small.shard_of(g) != large.shard_of(g))
        tier.set_group(group, ["a", "b", "c"])
        clock.run()
        old = tier.group_view(group)
        moved = tier.resize(3)
        assert group in moved
        tier.set_group(group, ["a", "b"])
        clock.run()
        new = tier.group_view(group)
        # The successor shard seeded its counters with the predecessor's
        # watermarks: the vid and every cid issued after the move are
        # strictly greater than anything issued before it.
        assert new.vid > old.vid
        assert min(new.start_ids.values()) > max(old.start_ids.values())
        assert new.vid.origin != old.vid.origin  # it really moved

    def test_resize_reattaches_sinks(self):
        clock, tier = self._tier(shards=2)
        small, large = GroupShardMap(2), GroupShardMap(3)
        group = next(g for g in GROUPS if small.shard_of(g) != large.shard_of(g))
        views = []
        tier.attach_client(group, "a", lambda cid, m: None, views.append)
        tier.set_group(group, ["a"])
        clock.run()  # first view lands before the move (release cancels
        # anything still pending - a shard never speaks for a group it
        # no longer owns)
        tier.resize(3)
        tier.reconfigure_group(group)
        clock.run()
        assert len(views) == 2  # one view from each side of the move


class _GrowableLink:
    """A TierLink whose attach needs no awaiting (like the asyncio hub)."""

    def __init__(self):
        self.handlers = {}

    async def attach(self, sid, handler):
        self.attach_sync(sid, handler)

    def attach_sync(self, sid, handler):
        self.handlers[sid] = handler

    def transmit(self, src, dst, message):
        pass


class _SocketishLink:
    """A TierLink that must await attachment (like TCP): no attach_sync."""

    def __init__(self):
        self.handlers = {}

    async def attach(self, sid, handler):
        self.handlers[sid] = handler

    def transmit(self, src, dst, message):
        pass


class TestPlanPartitionSelfGrow:
    def test_grows_over_sync_attachable_link(self):
        link = _GrowableLink()
        tier = MembershipTier(link, servers=1)
        asyncio.run(tier.start())
        assert len(tier.servers) == 1
        plan = tier.plan_partition([["a"], ["b"], ["c"]])
        assert len(tier.servers) == 3
        assert len(plan.assignment) == 3
        assert set(plan.assignment) <= set(link.handlers)

    def test_explicit_ensure_capacity_still_works(self):
        link = _GrowableLink()
        tier = MembershipTier(link, servers=1)

        async def grow():
            await tier.start()
            await tier.ensure_capacity(3)

        asyncio.run(grow())
        assert len(tier.plan_partition([["a"], ["b"], ["c"]]).assignment) == 3

    def test_await_only_link_still_demands_capacity(self):
        tier = MembershipTier(_SocketishLink(), servers=1)
        asyncio.run(tier.start())
        with pytest.raises(ValueError, match="ensure_capacity"):
            tier.plan_partition([["a"], ["b"]])


class TestScaleWorld:
    def test_many_groups_end_to_end(self):
        world = ScaleWorld(shards=auto_shards(6))
        pids = [f"p{i:02d}" for i in range(12)]
        world.add_processes(pids)
        names = [f"g{i}" for i in range(6)]
        for index, name in enumerate(names):
            world.set_group(name, [pids[(index + k) % 12] for k in range(3)])
        world.run()
        assert all(world.settled(name) for name in names)
        touched = world.crash("p01")  # member of g0 and g1 only
        assert touched == 2
        world.run()
        assert all(world.settled(name) for name in names)
        for name in ("g0", "g1"):
            assert "p01" not in world.group_view(name).members


class TestShardMapSkew:
    """HRW distribution skew, bounded across shard counts (not just 8)."""

    @pytest.mark.parametrize("shards", [2, 3, 5, 8, 13])
    def test_skew_bound(self, shards):
        placement = GroupShardMap(shards).placement(GROUPS)
        loads = [sum(1 for s in placement.values() if s == i) for i in range(shards)]
        mean = len(GROUPS) / shards
        assert min(loads) > 0.55 * mean, (shards, loads)
        assert max(loads) < 1.55 * mean, (shards, loads)

    def test_every_shard_wins_something(self):
        placement = GroupShardMap(16).placement(GROUPS)
        assert set(placement.values()) == set(range(16))


class TestConsecutiveResizes:
    """Watermark carry-over must compound across *consecutive* resizes,
    not just survive one (the single-resize test above)."""

    def _watermark_history(self, sizes):
        clock = EventScheduler()
        tier = ShardedMembershipTier(clock, shards=sizes[0])
        for group in GROUPS[:40]:
            tier.set_group(group, ["a", "b", "c"])
        clock.run()
        history = {g: [tier.group_view(g)] for g in GROUPS[:40]}
        for size in sizes[1:]:
            tier.resize(size)
            for group in GROUPS[:40]:
                tier.reconfigure_group(group)
            clock.run()
            for group in GROUPS[:40]:
                history[group].append(tier.group_view(group))
        return tier, history

    def test_counters_rise_through_grow_shrink_grow(self):
        tier, history = self._watermark_history([2, 3, 2, 5])
        bounced = 0
        for group, views in history.items():
            counters = [v.vid.counter for v in views]
            assert counters == sorted(set(counters)), (group, counters)
            cids = [max(v.start_ids.values()) for v in views]
            assert cids == sorted(set(cids)), (group, cids)
            if len({v.vid.origin for v in views}) > 1:
                bounced += 1
        # The sequence must actually have exercised relocation (and for
        # some group more than once), or the test proves nothing.
        assert bounced > 0
        moved_twice = [
            g for g, views in history.items()
            if len({v.vid.origin for v in views}) >= 3
        ]
        assert moved_twice, "no group relocated on consecutive resizes"

    def test_moved_floors_are_recorded_durably(self):
        tier, history = self._watermark_history([2, 4])
        for group, views in history.items():
            cid_floor, counter_floor = tier.floors[group]
            assert counter_floor >= views[-1].vid.counter
            assert cid_floor >= max(views[-1].start_ids.values())


class TestShardRebuild:
    def test_rebuild_seeds_from_durable_floors(self):
        clock = EventScheduler()
        tier = ShardedMembershipTier(clock, shards=2)
        views = {}
        for group in GROUPS[:10]:
            tier.attach_client(
                group, "a", lambda cid, m: None,
                lambda view, g=group: views.setdefault(g, []).append(view),
            )
            tier.set_group(group, ["a", "b"])
        clock.run()
        index = next(
            i for i, shard in enumerate(tier.shards) if shard.groups
        )
        owned = sorted(tier.shards[index].groups)
        before = {g: tier.group_view(g) for g in owned}
        fresh = tier.rebuild_shard(index)
        # Total amnesia: the fresh shard never saw the old counters...
        assert fresh.group_view(owned[0]) is None
        for group in owned:
            tier.reconfigure_group(group)
        clock.run()
        for group in owned:
            after = tier.group_view(group)
            # ...yet every new view is strictly above the pre-crash one,
            # because adoption was seeded from the tier's durable floors.
            assert after.vid.counter > before[group].vid.counter
            assert min(after.start_ids.values()) > max(before[group].start_ids.values())
            assert views[group][-1] == after  # sinks were reattached

    def test_dead_shard_pending_notices_are_cancelled(self):
        clock = EventScheduler()
        tier = ShardedMembershipTier(clock, shards=2, round_duration=5.0)
        delivered = []
        group = GROUPS[0]
        tier.attach_client(group, "a", lambda cid, m: None, delivered.append)
        tier.set_group(group, ["a"])
        index = tier.map.shard_of(group)
        tier.rebuild_shard(index)  # crash while the view notice is in flight
        clock.run()
        assert delivered == []  # a dead shard never speaks
