"""Unit tests for the deployment layer and the membership tier.

The integration matrix (tests/integration/test_scenarios.py) exercises
the three backends end to end; here the pieces are tested in isolation -
the tier over a synchronous loopback link, the backend registry, and the
Deployment contract itself.
"""

import asyncio

import pytest

from repro.deploy import (
    SUBSTRATES,
    SimDeployment,
    make_deployment,
    run_scenario,
)
from repro.membership import (
    MembershipTier,
    StartChangeNotice,
    ViewNotice,
)
from repro.types import VID_ZERO


class LoopbackLink:
    """A buffering TierLink: ``transmit`` is fire-and-forget, as the
    protocol demands, and messages are delivered FIFO on ``drain()`` -
    after the tier has finished its control step, the way every real
    substrate's event loop does.  (Delivering synchronously inside
    ``transmit`` would let
    a proposal reach a peer whose reachable-set update is still pending
    in the same tier operation, which no asynchronous transport does.)

    Server-to-server messages go into the destination handler; client-
    bound notices land in per-client inboxes so tests can assert on the
    exact MBRSHP notice stream.
    """

    def __init__(self):
        self.handlers = {}
        self.inboxes = {}
        self.queue = []

    async def attach(self, sid, handler):
        self.handlers[sid] = handler

    def transmit(self, src, dst, message):
        self.queue.append((src, dst, message))

    def drain(self):
        while self.queue:
            src, dst, message = self.queue.pop(0)
            if dst in self.handlers:
                self.handlers[dst](src, message)
            else:
                self.inboxes.setdefault(dst, []).append(message)


class TierDriver:
    """A started tier plus its link, draining after every operation."""

    def __init__(self, clients=("a", "b", "c"), servers=1):
        self.link = LoopbackLink()
        self.tier = MembershipTier(self.link, servers=servers)
        for pid in clients:
            self.tier.add_client(pid)
        asyncio.run(self.tier.start())
        self.link.drain()

    def do(self, fn, *args, **kwargs):
        result = fn(*args, **kwargs)
        self.link.drain()
        return result

    def inbox(self, pid):
        return self.link.inboxes.get(pid, [])


def started_tier(clients=("a", "b", "c"), servers=1):
    driver = TierDriver(clients=clients, servers=servers)
    return driver, driver.tier


class TestMembershipTier:
    def test_start_forms_full_view(self):
        driver, tier = started_tier()
        assert len(tier.views_formed) == 1
        view = tier.views_formed[0]
        assert view.members == {"a", "b", "c"}
        assert view.vid != VID_ZERO

    def test_notice_discipline_per_client(self):
        # Figure 2: every view is preceded by a start_change whose cid
        # becomes the view's startId for that client.
        driver, tier = started_tier()
        for pid in ("a", "b", "c"):
            inbox = driver.inbox(pid)
            kinds = [type(m) for m in inbox]
            assert kinds == [StartChangeNotice, ViewNotice]
            start, view = inbox
            assert view.view.start_id(pid) == start.cid
            assert view.view.members <= start.members

    def test_add_client_alone_does_not_join(self):
        driver, tier = started_tier()
        tier.add_client("d")
        assert tier.active_members() == {"a", "b", "c"}
        assert len(tier.views_formed) == 1
        driver.do(tier.set_members, ["a", "b", "c", "d"])
        assert tier.active_members() == {"a", "b", "c", "d"}
        assert tier.views_formed[-1].members == {"a", "b", "c", "d"}

    def test_set_members_unknown_raises(self):
        driver, tier = started_tier()
        with pytest.raises(ValueError, match="unknown clients"):
            tier.set_members(["a", "z"])

    def test_set_members_noop_returns_false(self):
        driver, tier = started_tier()
        assert driver.do(tier.set_members, ["a", "b", "c"]) is False
        assert len(tier.views_formed) == 1

    def test_cids_stay_unique_across_reconfigurations(self):
        driver, tier = started_tier()
        driver.do(tier.set_members, ["a", "b"])
        driver.do(tier.set_members, ["a", "b", "c"])
        for pid in ("a", "b", "c"):
            cids = [m.cid for m in driver.inbox(pid) if isinstance(m, StartChangeNotice)]
            assert len(cids) == len(set(cids))
            assert cids == sorted(cids)

    def test_plan_partition_components(self):
        driver, tier = started_tier(clients=("a", "b", "c", "d", "e"), servers=1)
        asyncio.run(tier.ensure_capacity(3))
        plan = tier.plan_partition([["a", "b"], ["c", "d"]])
        # One component per group (clients + its server), a singleton for
        # the spare server, and a singleton for the stray client e.
        assert sorted(map(sorted, plan.components)) == sorted(
            map(sorted, [["a", "b", "srv:0"], ["c", "d", "srv:1"], ["srv:2"], ["e"]])
        )

    def test_partition_detaches_and_heal_reattaches(self):
        driver, tier = started_tier(clients=("a", "b", "c"), servers=2)
        plan = tier.plan_partition([["a", "b"]])
        driver.do(tier.apply_partition, plan)
        assert tier.active_members() == {"a", "b"}
        assert tier.views_formed[-1].members == {"a", "b"}
        driver.do(tier.heal)
        assert tier.active_members() == {"a", "b", "c"}
        assert tier.views_formed[-1].members == {"a", "b", "c"}

    def test_explicit_leave_survives_heal(self):
        driver, tier = started_tier()
        driver.do(tier.set_members, ["a", "b"])
        driver.do(tier.heal)
        # c left by reconfiguration, not by partition: heal must not
        # resurrect it.
        assert tier.active_members() == {"a", "b"}

    def test_local_monotonicity_across_server_move(self):
        # When a client's home server changes, the new server's counters
        # must exceed everything the client may have installed.
        driver, tier = started_tier(clients=("a", "b", "c", "d"), servers=1)
        asyncio.run(tier.ensure_capacity(2))
        plan = tier.plan_partition([["a", "b"], ["c", "d"]])
        driver.do(tier.apply_partition, plan)
        driver.do(tier.heal)
        for pid in ("a", "b", "c", "d"):
            vids = [m.view.vid for m in driver.inbox(pid) if isinstance(m, ViewNotice)]
            assert vids == sorted(vids)
            assert len(set(vids)) == len(vids)

    def test_crashed_client_not_resurrected_by_move(self):
        driver, tier = started_tier(clients=("a", "b", "c"), servers=1)
        driver.do(tier.client_crashed, "c")
        assert tier.views_formed[-1].members == {"a", "b"}
        asyncio.run(tier.ensure_capacity(2))
        plan = tier.plan_partition([["a", "c"], ["b"]])
        driver.do(tier.apply_partition, plan)
        # c moved homes while crashed; the views of the two components
        # both exclude it.
        assert {v.members for v in tier.views_formed[-2:]} == {
            frozenset({"a"}),
            frozenset({"b"}),
        }

    def test_watermark_tracks_max_counter(self):
        driver, tier = started_tier()
        first = tier.watermark()
        driver.do(tier.set_members, ["a", "b"])
        assert tier.watermark() > first


class TestBackendRegistry:
    def test_unknown_substrate_raises(self):
        with pytest.raises(ValueError, match="unknown substrate"):
            make_deployment("carrier-pigeon")

    def test_sim_backend_constructs_eagerly(self):
        deployment = make_deployment("sim")
        assert isinstance(deployment, SimDeployment)
        assert deployment.name == "sim"

    def test_substrate_names_match_backends(self):
        assert set(SUBSTRATES) == {"sim", "async", "tcp"}


class TestDeploymentContract:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_observables_consistent(self, substrate):
        async def scenario(deployment):
            await deployment.setup(["a", "b"])
            await deployment.send("a", "x")
            await deployment.settle()

        deployment = run_scenario(substrate, scenario)
        assert deployment.processes() == ["a", "b"]
        for pid in "ab":
            assert ("a", "x") in deployment.delivered(pid)
            assert deployment.current_view(pid).members == {"a", "b"}
            assert deployment.views(pid)[-1] == deployment.current_view(pid)
        assert len(deployment.trace) > 0
        deployment.check()
