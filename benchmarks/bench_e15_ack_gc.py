"""E15 - acknowledgement-based garbage collection (Section 5.1).

Paper: "Any actual implementation of the algorithm needs to employ some
sort of a garbage collection mechanism [...] Group communication systems
usually use acknowledgments to track which messages have been delivered
to all the view members, and such messages are discarded."  Claim shape:
with ack-GC the buffer residency is bounded by the ack interval times the
group size regardless of how long the view lives; without it, residency
grows linearly with traffic.
"""

import pytest

from repro.experiments import format_table
from repro.net import ConstantLatency, SimWorld

WAVES = 30
GROUP = 5


def run_traffic(ack_interval):
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=1.0,
        ack_gc_interval=ack_interval,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(GROUP)])
    world.start()
    world.run()
    peak = 0
    for wave in range(WAVES):
        for node in nodes:
            node.send(f"{node.pid}-{wave}")
        world.run_until(world.now() + 0.5)  # mid-flight residency counts
        peak = max(peak, max(n.endpoint.buffered_messages() for n in nodes))
        world.run()
        peak = max(peak, max(n.endpoint.buffered_messages() for n in nodes))
    final = max(n.endpoint.buffered_messages() for n in nodes)
    acks = world.network.totals().get("AckMsg", 0)
    assert all(len(n.delivered) == GROUP * WAVES for n in nodes)
    return peak, final, acks


def test_e15_buffer_residency(benchmark, report):
    def run():
        return {ack: run_traffic(ack) for ack in (None, 10, 5)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for ack, (peak, final, acks) in results.items():
        rows.append((ack or "off", peak, final, acks))
    no_gc_final = results[None][1]
    assert no_gc_final == GROUP * WAVES  # linear growth without GC
    for ack in (10, 5):
        assert results[ack][1] < no_gc_final / 4  # bounded with GC
        assert results[ack][2] > 0
    report.add(
        format_table(
            ["ack interval", "peak buffered", "final buffered", "ack msgs"],
            rows,
            title=f"E15 ack-based GC: buffer residency over {WAVES} waves x {GROUP} senders",
        )
    )
