"""E14 - the membership-server tier.

Paper claim shape: the dedicated-server architecture keeps client-side
reconfiguration cheap; adding servers costs one proposal exchange
(quadratic only in the small server count, not in the client count),
while the common case remains a single server round.
"""

import pytest

from repro.experiments.servers import measure_server_tier
from repro.experiments import format_table

SERVER_COUNTS = (1, 2, 4)


def test_e14_server_count_sweep(benchmark, report):
    def run():
        return [
            measure_server_tier(clients=8, servers=servers)
            for servers in SERVER_COUNTS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for r in results:
        assert r.converged
        # proposals are quadratic in the server tier only: L * (L - 1)
        assert r.proposal_messages == r.servers * (r.servers - 1)
        rows.append(
            (r.servers, r.bootstrap_time, r.reconfig_time, r.proposal_messages)
        )
    # reconfiguration latency is flat once there is more than one server
    multi = [r.reconfig_time for r in results if r.servers > 1]
    assert len(set(multi)) == 1
    report.add(
        format_table(
            ["servers", "bootstrap time", "reconfig time", "server-server proposals"],
            rows,
            title="E14 membership-server tier (8 clients, one crash reconfiguration)",
        )
    )
