"""E1 - reconfiguration latency: one round, in parallel.

Paper claim (Sections 1, 5, 9): the virtual synchrony round runs in
parallel with the membership round, so the GCS view lands together with
the membership view (0 extra rounds); sequential prior art pays +1 round
and identifier-pre-agreement designs (e.g. [7, 22]) pay +2.
"""

import pytest

from repro.experiments import ALGORITHMS, format_table, measure_reconfiguration
from repro.net import ConstantLatency, LognormalLatency

GROUP_SIZES = (4, 8, 16, 32)
EXPECTED_EXTRA_ROUNDS = {
    "gcs-1round (paper)": 0.0,
    "sequential-vs": 1.0,
    "two-round-vs": 2.0,
}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_e1_constant_latency(benchmark, report, name):
    endpoint_cls = ALGORITHMS[name]

    def run():
        return [
            measure_reconfiguration(endpoint_cls, group_size=n, algorithm_name=name)
            for n in GROUP_SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            r.algorithm,
            r.group_size,
            r.membership_latency,
            r.gcs_latency,
            r.extra_rounds,
            EXPECTED_EXTRA_ROUNDS[name],
        )
        for r in results
    ]
    for r in results:
        assert r.extra_rounds == pytest.approx(EXPECTED_EXTRA_ROUNDS[name], abs=0.01)
    report.add(
        format_table(
            ["algorithm", "n", "mbrshp_t", "gcs_t", "extra_rounds", "claimed"],
            rows,
            title=f"E1 reconfiguration latency, constant latency ({name})",
        )
    )


def test_e1_wan_latency_preserves_ordering(benchmark, report):
    """Under heavy-tailed WAN latency the *ordering* must hold: the paper's
    algorithm finishes no later than sequential, which finishes no later
    than two-round."""

    def run():
        out = {}
        for name, endpoint_cls in ALGORITHMS.items():
            out[name] = measure_reconfiguration(
                endpoint_cls,
                group_size=12,
                latency=LognormalLatency(1.0, 0.5, seed=11),
                algorithm_name=name,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ours = results["gcs-1round (paper)"].gcs_latency
    seq = results["sequential-vs"].gcs_latency
    two = results["two-round-vs"].gcs_latency
    assert ours <= seq <= two
    report.add(
        format_table(
            ["algorithm", "gcs latency (lognormal wan)"],
            [(name, r.gcs_latency) for name, r in results.items()],
            title="E1b reconfiguration latency under WAN (lognormal) latency, n=12",
        )
    )
