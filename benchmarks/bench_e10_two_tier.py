"""E10 - the two-tier hierarchy of Section 9, implemented.

Paper (future work): "messages will be sent by each process to its
designated leader, which will in turn, aggregate the cut messages into a
single message and forward it to the other leaders."  Claim shape: large
sync-message savings at scale for a small bounded latency cost.
"""

import pytest

from repro.experiments import format_table, measure_two_tier

CONFIGS = [
    # (group size, leader counts to sweep)
    (16, (0, 2, 4)),
    (32, (0, 4, 8)),
]


def test_e10_sync_aggregation(benchmark, report):
    def run():
        rows = []
        for group_size, leader_counts in CONFIGS:
            for leaders in leader_counts:
                rows.append(measure_two_tier(group_size=group_size, leaders=leaders))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    flat_msgs = {}
    for r in results:
        assert r.converged
        if r.leaders == 0:
            flat_msgs[r.group_size] = r.sync_messages
            assert r.extra_latency == pytest.approx(0.0)
        else:
            assert r.sync_messages < flat_msgs[r.group_size]
            assert r.extra_latency <= 2.0  # at most the two extra hops
        table_rows.append(
            (
                r.group_size,
                r.leaders or "flat",
                r.sync_messages,
                f"{r.sync_messages / flat_msgs[r.group_size]:.2f}x",
                r.extra_latency,
            )
        )
    report.add(
        format_table(
            ["n", "leaders", "sync msgs", "vs flat", "extra latency"],
            table_rows,
            title="E10 two-tier sync aggregation (Section 9, implemented)",
        )
    )
