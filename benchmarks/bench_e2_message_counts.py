"""E2 - message cost of reconfiguration.

Paper claim: one all-to-all exchange of synchronization messages
(n*(n-1) for n survivors) and *no* identifier-agreement traffic; the
two-round baseline additionally pays the coordinator's n-1
identifier-proposal messages.
"""

import pytest

from repro.experiments import ALGORITHMS, format_table, measure_reconfiguration

GROUP_SIZES = (4, 8, 16)


def test_e2_sync_and_agreement_messages(benchmark, report):
    def run():
        rows = []
        for n in GROUP_SIZES:
            survivors = n - 1
            for name, endpoint_cls in ALGORITHMS.items():
                result = measure_reconfiguration(
                    endpoint_cls, group_size=n, algorithm_name=name
                )
                rows.append((result, survivors))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for result, survivors in rows:
        expected_sync = survivors * (survivors - 1)
        expected_agree = (survivors - 1) if "two-round" in result.algorithm else 0
        assert result.sync_messages == expected_sync, result
        assert result.agreement_messages == expected_agree, result
        table_rows.append(
            (
                result.algorithm,
                result.group_size,
                result.sync_messages,
                expected_sync,
                result.agreement_messages,
                expected_agree,
            )
        )
    report.add(
        format_table(
            ["algorithm", "n", "sync msgs", "claimed", "agree msgs", "claimed"],
            table_rows,
            title="E2 reconfiguration message counts (survivors = n-1)",
        )
    )
