"""Benchmark-suite plumbing.

Each benchmark registers one or more formatted claim-versus-measured
tables through the ``report`` fixture; ``pytest_terminal_summary`` prints
them after the pytest-benchmark timing table, so a plain

    pytest benchmarks/ --benchmark-only

shows both the wall-clock costs and the reproduced experiment rows.
"""

from __future__ import annotations

from typing import List

import pytest

_TABLES: List[str] = []


class Report:
    """Collects experiment tables for the end-of-run summary."""

    def add(self, table: str) -> None:
        _TABLES.append(table)


@pytest.fixture(scope="session")
def report() -> Report:
    return Report()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("reproduced experiment tables (paper claims vs measured)")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
