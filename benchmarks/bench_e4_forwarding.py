"""E4 - forwarding strategies (Section 5.2.2).

Paper claim: the simple strategy lets every committed holder forward a
missing message (up to |holders| copies per missing message); the
min-copies strategy elects exactly one forwarder, so "usually only one
copy of m will be sent".  Both must still converge and agree.
"""

import pytest

from repro.core import MinCopiesStrategy, SimpleStrategy
from repro.experiments import format_table, measure_forwarding

SCENARIOS = [
    # (group size, backlog, holders)
    (5, 3, 1),
    (6, 4, 2),
    (8, 4, 3),
]


def test_e4_forwarded_copies(benchmark, report):
    def run():
        rows = []
        for group_size, backlog, holders in SCENARIOS:
            for strategy in (SimpleStrategy(), MinCopiesStrategy()):
                rows.append(
                    measure_forwarding(
                        strategy,
                        group_size=group_size,
                        backlog=backlog,
                        holders=holders,
                    )
                )
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for r in results:
        assert r.converged and r.agreed, r
        expected = float(r.holders) if r.strategy == "SimpleStrategy" else 1.0
        assert r.copies_per_missing == pytest.approx(expected), r
        table_rows.append(
            (r.strategy, r.group_size, r.holders, r.missing_instances,
             r.forwarded_copies, r.copies_per_missing, expected)
        )
    report.add(
        format_table(
            ["strategy", "n", "holders", "missing", "copies", "copies/missing", "claimed"],
            table_rows,
            title="E4 forwarding cost: simple vs min-copies",
        )
    )
