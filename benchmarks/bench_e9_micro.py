"""E9 - framework micro-benchmarks.

Wall-clock costs of the substrate itself: IOA scheduler steps, endpoint
drain throughput in the simulator, and the safety-checker battery.  These
are the numbers a user extending the library cares about.
"""

import pytest

from repro.checking import check_all_safety
from repro.harness import ModelHarness
from repro.net import ConstantLatency, SimWorld


def test_micro_model_scheduler(benchmark):
    """Fair-scheduler steps/second on the composed 3-process model."""

    def run():
        harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
        harness.form_view("abc")
        return harness.scheduler("fair").run(max_steps=50_000)

    steps = benchmark(run)
    assert steps > 50


def test_micro_random_scheduler(benchmark):
    """Adversarial-scheduler steps/second on the same 3-process model."""

    def run():
        harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
        harness.form_view("abc")
        return harness.scheduler("random").run(max_steps=200)

    steps = benchmark(run)
    assert steps > 50


def test_micro_sim_multicast(benchmark):
    """Simulated deliveries/second: 8 nodes, 10 messages each."""

    def run():
        world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
        nodes = world.add_nodes([f"p{i}" for i in range(8)])
        world.start()
        world.run()
        for node in nodes:
            for i in range(10):
                node.send(i)
        world.run()
        return sum(len(n.delivered) for n in nodes)

    delivered = benchmark(run)
    assert delivered == 8 * 8 * 10


def test_micro_safety_checker(benchmark):
    """Full safety battery over a settled run's trace."""
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
    nodes = world.add_nodes([f"p{i}" for i in range(6)])
    world.start()
    world.run()
    for node in nodes:
        for i in range(10):
            node.send(i)
    world.run()
    world.partition([["p0", "p1", "p2"], ["p3", "p4", "p5"]])
    world.run()

    benchmark(check_all_safety, world.trace, list(world.nodes))
