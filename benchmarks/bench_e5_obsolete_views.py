"""E5 - obsolete-view suppression (Section 1).

Paper claim: when the membership changes its mind mid-reconfiguration,
the start_change interface revises the attempt in flight and the
application sees only the final view; designs that run each membership
invocation to completion deliver every superseded view to the
application.
"""

import pytest

from repro.experiments import format_table, measure_obsolete_views

CHURNS = (2, 4, 6)


def test_e5_views_seen_by_application(benchmark, report):
    def run():
        rows = []
        for churn in CHURNS:
            for mode in ("revise", "serialize"):
                rows.append(measure_obsolete_views(mode, churn=churn))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for r in results:
        assert r.converged
        expected = 1.0 if r.mode == "revise" else float(r.churn)
        assert r.app_views_per_process == pytest.approx(expected), r
        table_rows.append(
            (r.mode, r.churn, r.app_views_per_process, expected, r.total_time)
        )
    report.add(
        format_table(
            ["mode", "membership revisions", "app views/process", "claimed", "settle time"],
            table_rows,
            title="E5 obsolete-view suppression: revise-in-flight vs run-to-completion",
        )
    )
