"""E3 - parallelism ablation: overlapping the sync round with the
membership round.

Paper claim: because synchronization starts at the start_change (not at
the view), the extra reconfiguration latency of the paper's algorithm is
independent of the membership round duration - the sync round hides
entirely inside it - whereas the baselines' extra rounds are *added* to
whatever the membership costs.
"""

import pytest

from repro.experiments import ALGORITHMS, format_table, measure_reconfiguration

ROUND_DURATIONS = (1.0, 2.0, 4.0, 8.0)


def test_e3_overlap_with_membership_round(benchmark, report):
    def run():
        rows = []
        for duration in ROUND_DURATIONS:
            for name, endpoint_cls in ALGORITHMS.items():
                rows.append(
                    measure_reconfiguration(
                        endpoint_cls,
                        group_size=8,
                        round_duration=duration,
                        algorithm_name=name,
                    )
                )
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for r in results:
        table_rows.append((r.algorithm, r.membership_latency, r.gcs_latency, r.extra_latency))
        if "paper" in r.algorithm:
            assert r.extra_latency == pytest.approx(0.0, abs=0.01)
        else:
            assert r.extra_latency > 0.5
    # the paper algorithm's total tracks the membership duration 1:1
    ours = [r for r in results if "paper" in r.algorithm]
    for r in ours:
        assert r.gcs_latency == pytest.approx(r.membership_latency, abs=0.01)
    report.add(
        format_table(
            ["algorithm", "membership round", "total to gcs view", "extra after mbrshp"],
            table_rows,
            title="E3 sync-round overlap vs membership round duration (n=8)",
        )
    )
