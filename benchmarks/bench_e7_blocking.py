"""E7 - the application blocking window (Section 5.3).

Blocking the application during a view change is required for Self
Delivery + Virtual Synchrony ([19]).  The designs trade *where* the
window sits: the paper's algorithm blocks from the start_change to the
view (the window spans the membership round, but total reconfiguration is
shortest); the baselines block only after the membership view, for the
duration of their extra rounds (shorter window, longer total outage).
The benchmark reports both sides of the trade-off.
"""

import pytest

from repro.experiments import (
    ALGORITHMS,
    format_table,
    measure_blocking_window,
    measure_reconfiguration,
)

ROUND_DURATION = 3.0


def test_e7_blocking_window_vs_total_latency(benchmark, report):
    def run():
        rows = []
        for name, endpoint_cls in ALGORITHMS.items():
            blocking = measure_blocking_window(
                endpoint_cls, round_duration=ROUND_DURATION, algorithm_name=name
            )
            total = measure_reconfiguration(
                endpoint_cls, group_size=6, round_duration=ROUND_DURATION,
                algorithm_name=name,
            )
            rows.append((blocking, total))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    expected_window = {
        "gcs-1round (paper)": ROUND_DURATION,  # spans the membership round
        "sequential-vs": 1.0,  # one sync round after the view
        "two-round-vs": 2.0,  # agree-id + sync rounds after the view
    }
    table_rows = []
    for blocking, total in results:
        assert blocking.mean_blocking_window == pytest.approx(
            expected_window[blocking.algorithm], abs=0.01
        )
        table_rows.append(
            (
                blocking.algorithm,
                blocking.mean_blocking_window,
                expected_window[blocking.algorithm],
                total.gcs_latency,
            )
        )
    # the paper's algorithm pays a longer window but the shortest outage
    totals = {b.algorithm: t.gcs_latency for b, t in results}
    assert totals["gcs-1round (paper)"] == min(totals.values())
    report.add(
        format_table(
            ["algorithm", "blocking window", "claimed", "total reconfig latency"],
            table_rows,
            title=f"E7 blocking window vs total outage (membership round = {ROUND_DURATION})",
        )
    )
