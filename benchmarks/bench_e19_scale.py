#!/usr/bin/env python
"""E19 scale-sweep runner: both scalability axes, recorded as JSON.

Runs the endpoint axis (one group of n members with the two-tier
overlay, a member crash, sync traffic vs the §9 cost model) and the
group axis (g groups over shared processes on the sharded membership
tier, one process crash, locality of the reconfiguration), then merges
the rows into ``--output`` (default: repo-root ``BENCH_E19.json``).

The full sweep is the acceptance configuration of the scale tier::

    PYTHONPATH=src python benchmarks/bench_e19_scale.py

CI runs the reduced form on every substrate::

    PYTHONPATH=src python benchmarks/bench_e19_scale.py \
        --n 200 --g 64 --substrates sim,async,tcp --check

``--check`` additionally asserts the acceptance bounds: every endpoint
row converged with sync volume within 2x of n + L(L-1) + nL, every
group row settled, and the whole sweep stayed under ``--budget``
seconds (default 300).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.scale import (  # noqa: E402
    measure_scale_endpoints,
    measure_scale_groups,
)

#: Real substrates drive every node through an event loop (and, for tcp,
#: a full socket mesh); they run at smoke scale - their row demonstrates
#: the overlay installs there, not a scaling claim.
REAL_SUBSTRATE_N = 12


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, nargs="*", default=[32, 200, 1000],
                        help="endpoint-axis group sizes (default: 32 200 1000)")
    parser.add_argument("--g", type=int, nargs="*", default=[8, 64, 1000],
                        help="group-axis group counts (default: 8 64 1000)")
    parser.add_argument("--processes", type=int, default=1000,
                        help="process pool for the group axis (default: 1000)")
    parser.add_argument("--substrates", default="sim",
                        help="comma-separated substrates for the endpoint "
                             "axis; non-sim substrates run at smoke scale "
                             f"(n={REAL_SUBSTRATE_N})")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_E19.json")
    parser.add_argument("--entry", default=time.strftime("%Y-%m-%d"),
                        help="name of the entry to write (default: today)")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance bounds (exit 1 on failure)")
    parser.add_argument("--budget", type=float, default=300.0,
                        help="wall-clock budget in seconds checked by --check")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    endpoint_rows = []
    for substrate in args.substrates.split(","):
        substrate = substrate.strip()
        sizes = args.n if substrate == "sim" else [REAL_SUBSTRATE_N]
        for n in sizes:
            row = measure_scale_endpoints(
                n=n, substrate=substrate, check=(n <= 64)
            )
            endpoint_rows.append(row)
            print(
                f"endpoints {substrate:5s} n={row.n:5d} L={row.leaders:3d}  "
                f"sync={row.sync_messages:7d}  model={row.model_messages:7d}  "
                f"ratio={row.model_ratio:5.2f}  flat={row.flat_messages:8d}  "
                f"wall={row.wall_seconds:6.1f}s  converged={row.converged}"
            )
    group_rows = []
    for g in args.g:
        row = measure_scale_groups(processes=args.processes, groups=g)
        group_rows.append(row)
        print(
            f"groups    sim   g={row.groups:5d} shards={row.shards:2d}  "
            f"views={row.views_formed:5d}  crash touched "
            f"{row.crash_groups_touched}/{row.groups} groups  "
            f"wall={row.wall_seconds:6.1f}s  settled={row.all_settled}"
        )
    total = time.perf_counter() - started
    print(f"total wall: {total:.1f}s")

    doc = {}
    if args.output.exists():
        doc = json.loads(args.output.read_text())
    doc.setdefault("benchmark", "E19 scale sweep (two-tier overlay + sharded membership)")
    doc.setdefault("entries", {})
    doc["entries"][args.entry] = {
        "endpoint_axis": [dataclasses.asdict(r) for r in endpoint_rows],
        "group_axis": [dataclasses.asdict(r) for r in group_rows],
        "total_wall_seconds": round(total, 1),
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"recorded entry {args.entry!r} in {args.output}")

    if args.check:
        failures = []
        for row in endpoint_rows:
            if not row.converged:
                failures.append(f"endpoint n={row.n} ({row.substrate}) did not converge")
            if row.model_ratio > 2.0:
                failures.append(
                    f"endpoint n={row.n} ({row.substrate}) sync volume "
                    f"{row.model_ratio:.2f}x the cost model (bound: 2x)"
                )
        for row in group_rows:
            if not row.all_settled:
                failures.append(f"groups g={row.groups} did not settle")
        if total > args.budget:
            failures.append(f"sweep took {total:.1f}s (budget: {args.budget:.0f}s)")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all acceptance bounds hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
