#!/usr/bin/env python
"""Standalone framework micro-benchmark runner.

Measures the framework substrate on four fixed workloads (the first
three are the same ones ``bench_e9_micro.py`` wraps for
pytest-benchmark):

* ``fair_steps_per_s``   - fair-scheduler steps/s on the 3-process model
  harness (strict end-points), the acceptance metric for engine PRs;
* ``random_steps_per_s`` - adversarial-scheduler steps/s on the same model;
* ``sim_deliveries_per_s`` - deliveries/s of an 8-node simulated run;
* ``steady_state_deliveries_per_s`` - deliveries/s of a 16-node
  simulated run sending in rounds within one stable view: the
  steady-state fast path (``repro.core.fastpath``) plus batched link
  framing, the acceptance metric for throughput PRs.

Results are merged into the ``--output`` JSON under a *dated* entry
(default: today, override with ``--entry``), preserving entries written
by earlier runs so the performance trajectory stays reviewable.  The
default output is ``benchmarks/BENCH_MICRO.json`` - a PR that wants to
publish an acceptance artifact names it explicitly::

    PYTHONPATH=src python benchmarks/run_micro.py
    python benchmarks/run_micro.py --output BENCH_E18.json --entry post_fastpath

``--guard`` compares the fresh rates against an explicit baseline file
and entry, failing (exit 1) on regression beyond ``--tolerance``::

    python benchmarks/run_micro.py --guard BENCH_E17.json \
        --guard-entry post_links_refactor --reps 3
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import ModelHarness  # noqa: E402
from repro.net import ConstantLatency, SimWorld  # noqa: E402


def fair_steps() -> int:
    harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
    harness.form_view("abc")
    return harness.scheduler("fair").run(max_steps=50_000)


def random_steps() -> int:
    harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
    harness.form_view("abc")
    return harness.scheduler("random").run(max_steps=200)


def sim_deliveries() -> int:
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
    nodes = world.add_nodes([f"p{i}" for i in range(8)])
    world.start()
    world.run()
    for node in nodes:
        for i in range(10):
            node.send(i)
    world.run()
    return sum(len(n.delivered) for n in nodes)


def steady_state_deliveries() -> int:
    """16 nodes, 40 rounds of 8 sends each, all within one stable view.

    After the initial view forms, no membership event ever occurs, so
    every send and every delivery rides the steady-state fast lane and
    every same-instant multicast burst shares batched carriers.
    """
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
    nodes = world.add_nodes([f"p{i:02d}" for i in range(16)])
    world.start()
    world.run()
    for round_no in range(40):
        for node in nodes:
            for i in range(8):
                node.send((round_no, i))
        world.run()
    return sum(len(n.delivered) for n in nodes)


WORKLOADS = [
    ("fair_steps_per_s", fair_steps),
    ("random_steps_per_s", random_steps),
    ("sim_deliveries_per_s", sim_deliveries),
    ("steady_state_deliveries_per_s", steady_state_deliveries),
]

WORKLOAD_DESCRIPTIONS = {
    "fair_steps_per_s": "fair-scheduler steps/s, 3-process model harness",
    "random_steps_per_s": "random-scheduler steps/s, 3-process model harness",
    "sim_deliveries_per_s": "deliveries/s, 8-node simulated multicast",
    "steady_state_deliveries_per_s": (
        "deliveries/s, 16-node simulated multicast in one stable view "
        "(steady-state fast path + batched framing)"
    ),
}


def measure(fn, reps: int) -> tuple[float, int]:
    fn()  # warm-up: compile chains, prime caches
    rates = []
    count = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        count = fn()
        elapsed = time.perf_counter() - t0
        rates.append(count / elapsed)
    return statistics.median(rates), count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "BENCH_MICRO.json",
        help="JSON file to merge results into "
        "(default: benchmarks/BENCH_MICRO.json)",
    )
    parser.add_argument(
        "--entry",
        default=time.strftime("%Y-%m-%d"),
        help="name of the entry to write (default: today's date)",
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="repetitions per workload (median is kept)"
    )
    parser.add_argument(
        "--guard",
        type=Path,
        default=None,
        help="baseline JSON file to compare against: fail (exit 1) if any "
        "workload regresses more than --tolerance below the baseline's "
        "--guard-entry rates",
    )
    parser.add_argument(
        "--guard-entry",
        default=None,
        help="entry inside the --guard file to compare against "
        "(required with --guard)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs the guard baseline (default: 0.10)",
    )
    args = parser.parse_args(argv)
    if args.guard is not None and args.guard_entry is None:
        parser.error("--guard requires --guard-entry")

    entry = {}
    for name, fn in WORKLOADS:
        rate, count = measure(fn, args.reps)
        entry[name] = round(rate, 1)
        entry[name.replace("_per_s", "_count")] = count
        print(f"{name:32s} {rate:10.1f}  (work units: {count})")

    doc = {}
    if args.output.exists():
        doc = json.loads(args.output.read_text())
    doc.setdefault("benchmark", "framework micro-benchmarks")
    doc.setdefault("workloads", {})
    doc["workloads"].update(WORKLOAD_DESCRIPTIONS)
    doc.setdefault("entries", {})
    doc["entries"][args.entry] = entry

    regressed = []
    if args.guard is not None:
        baseline_doc = json.loads(args.guard.read_text())
        baseline = baseline_doc["entries"][args.guard_entry]
        guard = {
            "baseline_file": args.guard.name,
            "baseline_entry": args.guard_entry,
            "tolerance": args.tolerance,
            "ratios": {},
        }
        for name, _fn in WORKLOADS:
            if not baseline.get(name):
                continue  # workloads the baseline predates are not guarded
            ratio = round(entry[name] / baseline[name], 3)
            guard["ratios"][name] = ratio
            ok = ratio >= 1.0 - args.tolerance
            print(
                f"guard {name:32s} {ratio:6.3f}x vs "
                f"{args.guard.name}:{args.guard_entry} "
                f"{'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                regressed.append(name)
        guard["within_tolerance"] = not regressed
        doc["guard"] = guard

    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.output}")
    if regressed:
        print(f"guard FAILED: {', '.join(regressed)} regressed "
              f"more than {args.tolerance:.0%}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
