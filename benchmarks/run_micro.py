#!/usr/bin/env python
"""Standalone E9 micro-benchmark runner -> BENCH_E9.json.

Measures the framework substrate on three fixed workloads (the same ones
``bench_e9_micro.py`` wraps for pytest-benchmark):

* ``fair_steps_per_s``   - fair-scheduler steps/s on the 3-process model
  harness (strict end-points), the acceptance metric for engine PRs;
* ``random_steps_per_s`` - adversarial-scheduler steps/s on the same model;
* ``sim_deliveries_per_s`` - deliveries/s of an 8-node simulated run.

Results are merged into ``BENCH_E9.json`` at the repository root under a
named entry (default ``current``), preserving entries written by earlier
PRs - most importantly ``pre_pr_baseline`` - so the performance
trajectory stays reviewable across the PR stack:

    PYTHONPATH=src python benchmarks/run_micro.py
    python benchmarks/run_micro.py --entry current --reps 5
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import ModelHarness  # noqa: E402
from repro.net import ConstantLatency, SimWorld  # noqa: E402


def fair_steps() -> int:
    harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
    harness.form_view("abc")
    return harness.scheduler("fair").run(max_steps=50_000)


def random_steps() -> int:
    harness = ModelHarness("abc", seed=1, scripts={p: ["m"] * 3 for p in "abc"})
    harness.form_view("abc")
    return harness.scheduler("random").run(max_steps=200)


def sim_deliveries() -> int:
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle")
    nodes = world.add_nodes([f"p{i}" for i in range(8)])
    world.start()
    world.run()
    for node in nodes:
        for i in range(10):
            node.send(i)
    world.run()
    return sum(len(n.delivered) for n in nodes)


WORKLOADS = [
    ("fair_steps_per_s", fair_steps),
    ("random_steps_per_s", random_steps),
    ("sim_deliveries_per_s", sim_deliveries),
]


def measure(fn, reps: int) -> tuple[float, int]:
    fn()  # warm-up: compile chains, prime caches
    rates = []
    count = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        count = fn()
        elapsed = time.perf_counter() - t0
        rates.append(count / elapsed)
    return statistics.median(rates), count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_E9.json",
        help="JSON file to merge results into (default: repo-root BENCH_E9.json)",
    )
    parser.add_argument(
        "--entry",
        default="current",
        help="name of the entry to write, e.g. current or pre_pr_baseline",
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="repetitions per workload (median is kept)"
    )
    parser.add_argument(
        "--guard",
        type=Path,
        default=None,
        help="baseline JSON file to compare against: fail (exit 1) if any "
        "workload regresses more than --tolerance below the baseline's "
        "--guard-entry rates",
    )
    parser.add_argument(
        "--guard-entry",
        default="current",
        help="entry inside the --guard file to compare against (default: current)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs the guard baseline (default: 0.10)",
    )
    args = parser.parse_args(argv)

    entry = {}
    for name, fn in WORKLOADS:
        rate, count = measure(fn, args.reps)
        entry[name] = round(rate, 1)
        entry[name.replace("_per_s", "_count")] = count
        print(f"{name:24s} {rate:10.1f}  (work units: {count})")

    doc = {}
    if args.output.exists():
        doc = json.loads(args.output.read_text())
    doc.setdefault("benchmark", "E9 framework micro-benchmarks")
    doc.setdefault("workloads", {
        "fair_steps_per_s": "fair-scheduler steps/s, 3-process model harness",
        "random_steps_per_s": "random-scheduler steps/s, 3-process model harness",
        "sim_deliveries_per_s": "deliveries/s, 8-node simulated multicast",
    })
    doc.setdefault("entries", {})
    doc["entries"][args.entry] = entry

    baseline = doc["entries"].get("pre_pr_baseline")
    current = doc["entries"].get("current")
    if baseline and current:
        doc["speedup_vs_baseline"] = {
            name: round(current[name] / baseline[name], 2)
            for name, _fn in WORKLOADS
            if baseline.get(name)
        }

    regressed = []
    if args.guard is not None:
        baseline_doc = json.loads(args.guard.read_text())
        baseline = baseline_doc["entries"][args.guard_entry]
        guard = {
            "baseline_file": args.guard.name,
            "baseline_entry": args.guard_entry,
            "tolerance": args.tolerance,
            "ratios": {},
        }
        for name, _fn in WORKLOADS:
            if not baseline.get(name):
                continue
            ratio = round(entry[name] / baseline[name], 3)
            guard["ratios"][name] = ratio
            ok = ratio >= 1.0 - args.tolerance
            print(
                f"guard {name:24s} {ratio:6.3f}x vs "
                f"{args.guard.name}:{args.guard_entry} "
                f"{'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                regressed.append(name)
        guard["within_tolerance"] = not regressed
        doc["guard"] = guard

    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.output}")
    if regressed:
        print(f"guard FAILED: {', '.join(regressed)} regressed "
              f"more than {args.tolerance:.0%}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
