"""E6 - steady-state within-view FIFO multicast.

Between reconfigurations the service is a plain reliable FIFO multicast
(the WV_RFIFO layer): every message costs n-1 wire messages and one
network latency end-to-end.  The sweep confirms both and records the
simulated delivery rate as group size grows.
"""

import pytest

from repro.experiments import format_table, measure_throughput

GROUP_SIZES = (4, 8, 16, 32)


def test_e6_throughput_sweep(benchmark, report):
    def run():
        return [
            measure_throughput(group_size=n, messages_per_sender=10)
            for n in GROUP_SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for r in results:
        sent = r.group_size * r.messages_per_sender
        assert r.total_deliveries == sent * r.group_size  # everyone delivers all
        assert r.latency_p50 == pytest.approx(1.0)  # one network hop
        assert r.wire_messages == sent * (r.group_size - 1)
        rows.append(
            (r.group_size, r.total_deliveries, r.deliveries_per_time_unit,
             r.latency_p50, r.latency_p99, r.wire_messages)
        )
    report.add(
        format_table(
            ["n", "deliveries", "deliveries/time", "latency p50", "latency p99", "wire msgs"],
            rows,
            title="E6 steady-state multicast (10 messages/sender, constant latency 1.0)",
        )
    )
