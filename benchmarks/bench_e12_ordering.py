"""E12 - ordering layers over the FIFO service (Section 4.1.1).

Paper: "FIFO is a basic service upon which one can build stronger
services" (citing the total-order protocol of [13]).  Claim shape: causal
order costs nothing extra for concurrent traffic, while total order pays
the sequencing hop - roughly doubling delivery latency - and in exchange
yields a single agreed delivery sequence.
"""

import pytest

from repro.experiments import format_table, measure_ordering_overhead

LAYERS = ("fifo", "causal", "total")


def test_e12_ordering_latency(benchmark, report):
    def run():
        return {
            layer: measure_ordering_overhead(layer, group_size=6, messages_per_sender=4)
            for layer in LAYERS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    fifo = results["fifo"].mean_delivery_latency
    causal = results["causal"].mean_delivery_latency
    total = results["total"].mean_delivery_latency
    assert causal == pytest.approx(fifo, rel=0.05)  # free for concurrent traffic
    assert 1.5 * fifo <= total <= 3.0 * fifo  # the sequencing hop
    assert results["total"].agreed_order
    report.add(
        format_table(
            ["layer", "mean delivery latency", "vs fifo", "agreed total order"],
            [
                (layer, r.mean_delivery_latency,
                 f"{r.mean_delivery_latency / fifo:.2f}x", r.agreed_order)
                for layer, r in results.items()
            ],
            title="E12 ordering layers over the FIFO service (n=6)",
        )
    )
