"""E13 - scalability in the number of groups (Section 1).

Paper claim: the client-server architecture "allows the service to be
scalable in the topology it spans, in the number of groups, and in the
number of clients."  The shape to reproduce: reconfiguring one group
costs the same regardless of how many *other* groups the same processes
participate in - group changes are isolated.
"""

import pytest

from repro.experiments import format_table
from repro.groups import MultiGroupWorld
from repro.net import ConstantLatency

GROUP_COUNTS = (1, 4, 16)


def reconfigure_one_group(total_groups: int):
    world = MultiGroupWorld(latency=ConstantLatency(1.0), round_duration=1.0)
    pids = [f"p{i}" for i in range(6)]
    for pid in pids:
        world.add_process(pid)
    for g in range(total_groups):
        for pid in pids:
            world.join(pid, f"group-{g}")
    world.run()
    world.network.reset_counters()
    other_views = sum(
        len(world.processes[pid].views[f"group-{g}"])
        for g in range(1, total_groups)
        for pid in pids
    )
    start = world.clock.now
    world.leave(pids[0], "group-0")
    world.run()
    other_views_after = sum(
        len(world.processes[pid].views[f"group-{g}"])
        for g in range(1, total_groups)
        for pid in pids
    )
    messages = sum(world.network.totals().values())
    return {
        "groups": total_groups,
        "latency": world.clock.now - start,
        "messages": messages,
        "other_groups_disturbed": other_views_after - other_views,
    }


def test_e13_group_isolation(benchmark, report):
    def run():
        return [reconfigure_one_group(g) for g in GROUP_COUNTS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = results[0]
    rows = []
    for r in results:
        assert r["other_groups_disturbed"] == 0
        assert r["latency"] == pytest.approx(baseline["latency"])
        assert r["messages"] == baseline["messages"]
        rows.append((r["groups"], r["latency"], r["messages"], r["other_groups_disturbed"]))
    report.add(
        format_table(
            ["total groups", "reconfig latency", "messages", "other groups disturbed"],
            rows,
            title="E13 reconfiguration cost of one group vs total group count (6 processes)",
        )
    )
