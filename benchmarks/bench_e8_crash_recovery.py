"""E8 - crash and recovery without stable storage (Section 8).

Paper claim: a crashed end-point may recover with its variables in
initial state, under its original identity; Local Monotonicity survives
because the membership service keeps the per-client watermarks.  The
benchmark measures the reconfiguration and reintegration times and
asserts the recovery guarantees across group sizes.
"""

import pytest

from repro.experiments import format_table, measure_crash_recovery

GROUP_SIZES = (3, 5, 9)


def test_e8_crash_recovery_sweep(benchmark, report):
    def run():
        return [measure_crash_recovery(group_size=n, check=True) for n in GROUP_SIZES]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for r in results:
        assert r.recovered_in_final_view
        assert r.post_recovery_delivery_ok
        assert r.monotone_view_ids
        rows.append(
            (r.group_size, r.reconfigure_after_crash, r.reintegration_time,
             r.recovered_in_final_view, r.monotone_view_ids)
        )
    report.add(
        format_table(
            ["n", "reconfig after crash", "reintegration", "rejoined final view",
             "monotone ids"],
            rows,
            title="E8 crash/recovery without stable storage",
        )
    )
