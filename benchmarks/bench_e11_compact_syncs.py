"""E11 - compact synchronization messages (Section 5.2.4).

Paper: a smaller sync ("I am not in your transitional set") suffices for
processes outside the sender's current view.  Claim shape: on partition
merges - where the start_change set strictly exceeds every current view -
the sync volume drops substantially, with identical message counts and
identical outcomes.
"""

import pytest

from repro.experiments import format_table, measure_compact_syncs

GROUP_SIZES = (6, 10, 16)


def test_e11_sync_volume_on_merges(benchmark, report):
    def run():
        rows = []
        for n in GROUP_SIZES:
            for compact in (False, True):
                rows.append(measure_compact_syncs(group_size=n, compact=compact))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    plain_volume = {}
    for r in results:
        assert r.converged
        if not r.compact:
            plain_volume[r.group_size] = r.sync_volume
        else:
            assert r.sync_volume < plain_volume[r.group_size]
        table_rows.append(
            (
                r.group_size,
                "compact" if r.compact else "full",
                r.sync_messages,
                r.sync_volume,
                f"{r.sync_volume / plain_volume[r.group_size]:.2f}x",
            )
        )
    report.add(
        format_table(
            ["n", "variant", "sync msgs", "sync volume", "vs full"],
            table_rows,
            title="E11 compact syncs on a half/half partition merge (Section 5.2.4)",
        )
    )
